// Tests for qqo_lint (tools/lint): every rule fires on its bad fixture
// and stays quiet on its good twin, suppression and policy files behave,
// and the CLI entry point honors its exit-code contract (0 clean /
// 1 findings / 2 usage).
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lexer.h"
#include "lint/lint.h"

namespace qopt::lint {
namespace {

const char* const kLintDataDir = QQO_TEST_DATA_DIR "/lint";

std::string FixturePath(const std::string& name) {
  return std::string(kLintDataDir) + "/" + name;
}

/// Lints one fixture through the real multi-file driver so policy lookup
/// and symbol harvesting run exactly as in production.
std::vector<Finding> LintFixture(const std::string& name) {
  Options options;
  std::vector<Finding> findings;
  std::string error;
  EXPECT_TRUE(LintPaths({FixturePath(name)}, options, &findings, &error))
      << error;
  return findings;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, StripsCommentsStringsAndPreprocessor) {
  const LexResult lex = Lex(
      "#include <random>  // rand() in a directive comment\n"
      "const char* s = \"std::random_device\";  /* rand() */\n"
      "int x = 1;\n");
  for (const Tok& tok : lex.tokens) {
    EXPECT_NE(tok.text, "random_device");
    EXPECT_NE(tok.text, "rand");
  }
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].text, "#include <random>");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[1].line, 2);
}

TEST(LexerTest, JoinsDirectiveContinuations) {
  const LexResult lex = Lex("#define TWO \\\n  2\nint y = TWO;\n");
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].text, "#define TWO 2");
  EXPECT_EQ(lex.directives[0].line, 1);
}

TEST(LexerTest, RawStringsCollapse) {
  const LexResult lex = Lex("auto s = R\"(rand() time(0))\";\n");
  for (const Tok& tok : lex.tokens) {
    EXPECT_NE(tok.text, "rand");
    EXPECT_NE(tok.text, "time");
  }
}

TEST(LexerTest, TracksLineNumbers) {
  const LexResult lex = Lex("int a;\nint b;\n\nint c;\n");
  ASSERT_EQ(lex.tokens.size(), 9u);
  EXPECT_EQ(lex.tokens[0].line, 1);
  EXPECT_EQ(lex.tokens[3].line, 2);
  EXPECT_EQ(lex.tokens[6].line, 4);
}

// ---------------------------------------------------------------------------
// Rule fixtures: each rule fires on bad, stays quiet on good
// ---------------------------------------------------------------------------

TEST(DeterminismRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("determinism_bad.cc");
  // random_device, mt19937, srand, rand, time, system_clock.
  EXPECT_GE(CountRule(findings, kDeterminismRule), 6);
}

TEST(DeterminismRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("determinism_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(DeterminismRuleTest, ExemptsProjectRngSources) {
  Options options;
  Policy policy;
  SymbolTable symbols;
  const std::string content = "#pragma once\nstruct random_device {};\n";
  EXPECT_TRUE(LintContent("src/common/random.h", content, policy, symbols,
                          options)
                  .empty());
  EXPECT_EQ(LintContent("src/anneal/foo.cc", content, policy, symbols,
                        options)
                .size(),
            1u);
}

TEST(OrderedOutputRuleTest, FiresOnBadFixtureViaPolicy) {
  const std::vector<Finding> findings =
      LintFixture("ordered/ordered_output_bad.cc");
  EXPECT_GE(CountRule(findings, kOrderedOutputRule), 2);  // range-for + begin
}

TEST(OrderedOutputRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings =
      LintFixture("ordered/ordered_output_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(OrderedOutputRuleTest, QuietWithoutResultPathPolicy) {
  const std::vector<Finding> findings =
      LintFixture("ordered_off/ordered_output_unmarked.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(DeadlineCoverageRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("deadline_bad.cc");
  // Three uncovered loops (one of them touching a token without ever
  // asking it about cancellation) plus one dangling marker.
  EXPECT_EQ(CountRule(findings, kDeadlineCoverageRule), 4);
  int dangling = 0;
  for (const Finding& finding : findings) {
    if (finding.message.find("dangling") != std::string::npos) ++dangling;
  }
  EXPECT_EQ(dangling, 1);
}

TEST(DeadlineCoverageRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("deadline_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(ObsCoverageRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("obs_bad.cc");
  // Both loops poll the deadline but emit nothing: obs fires, deadline
  // stays quiet.
  EXPECT_EQ(CountRule(findings, kObsCoverageRule), 2);
  EXPECT_EQ(CountRule(findings, kDeadlineCoverageRule), 0);
}

TEST(ObsCoverageRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("obs_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(ObsCoverageRuleTest, DanglingMarkerIsReportedByDeadlineRuleOnly) {
  Options options;
  options.rules = {kObsCoverageRule};
  const std::vector<Finding> findings = LintContent(
      "a.cc", "// QQO_LOOP(fixture.dangling)\nint NotALoop();\n", Policy{},
      SymbolTable{}, options);
  EXPECT_EQ(findings.size(), 0u);
}

TEST(ServeLoopFixtureTest, BadServerLoopsFireTheExpectedRules) {
  // Server-loop shapes (accept / drain / singleflight wait): the bad twin
  // holds one uncoverable accept loop, one silent drain loop and one
  // per-line-allocating accept loop.
  const std::vector<Finding> findings = LintFixture("serve_loop_bad.cc");
  EXPECT_EQ(CountRule(findings, kDeadlineCoverageRule), 1);
  EXPECT_EQ(CountRule(findings, kObsCoverageRule), 1);
  // std::string construction + unreserved push_back.
  EXPECT_EQ(CountRule(findings, kHotLoopAllocRule), 2);
}

TEST(ServeLoopFixtureTest, QuietOnGoodServerLoops) {
  const std::vector<Finding> findings = LintFixture("serve_loop_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(HotLoopAllocRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("hot_loop_alloc_bad.cc");
  // new, unreserved push_back, std::string construction, to_string,
  // make_unique — one finding each.
  EXPECT_EQ(CountRule(findings, kHotLoopAllocRule), 5);
}

TEST(HotLoopAllocRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("hot_loop_alloc_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(HotLoopAllocRuleTest, ReserveAnywhereInFileAmortizesPushBack) {
  Options options;
  options.rules = {kHotLoopAllocRule};
  const std::vector<Finding> findings = LintContent(
      "a.cc",
      "void f(int n) {\n"
      "  out.reserve(n);\n"
      "  // QQO_LOOP(fixture.reserved)\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    out.push_back(i);\n"
      "    other.push_back(i);\n"
      "  }\n"
      "}\n",
      Policy{}, SymbolTable{}, options);
  // Only the never-reserved container is flagged.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'other'"), std::string::npos);
}

TEST(StatusDiscardRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("status_discard_bad.cc");
  EXPECT_EQ(CountRule(findings, kStatusDiscardRule), 3);
}

TEST(StatusDiscardRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("status_discard_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(StatusDiscardRuleTest, VoidOverloadMakesNameAmbiguous) {
  SymbolTable symbols;
  symbols.HarvestFrom("Status ParallelFor(int n, Deadline d);\n");
  EXPECT_TRUE(symbols.Contains("ParallelFor"));
  symbols.HarvestFrom("void ParallelFor(int n);\n");
  EXPECT_FALSE(symbols.Contains("ParallelFor"));
}

TEST(StatusDiscardRuleTest, SeesSymbolsAcrossFiles) {
  // Declaration in one file, bare call in another: the two-pass driver
  // must connect them.
  Options options;
  SymbolTable symbols;
  symbols.HarvestFrom("Status SaveResults(int count);\n");
  const std::vector<Finding> findings = LintContent(
      "caller.cc", "void f() { SaveResults(1); }\n", Policy{}, symbols,
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kStatusDiscardRule);
}

TEST(HeaderHygieneRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("header_hygiene_bad.h");
  // Include guard instead of #pragma once + two using-directives.
  EXPECT_EQ(CountRule(findings, kHeaderHygieneRule), 3);
}

TEST(HeaderHygieneRuleTest, QuietOnGoodFixture) {
  const std::vector<Finding> findings = LintFixture("header_hygiene_good.h");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(HeaderHygieneRuleTest, IgnoresSourceFiles) {
  Options options;
  const std::vector<Finding> findings =
      LintContent("a.cc", "using namespace std;\n", Policy{}, SymbolTable{},
                  options);
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// Cross-TU rules (tools/lint/callgraph): deadline plumbing, lock
// discipline, pool reentrancy. The index itself is unit-tested in
// callgraph_test.cc; these pin the end-to-end rule behavior.
// ---------------------------------------------------------------------------

TEST(DeadlinePlumbingRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings =
      LintFixture("deadline_plumbing_bad.cc");
  // One direct drop plus one inside a deferred (lambda) call.
  EXPECT_EQ(CountRule(findings, kDeadlinePlumbingRule), 2);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(DeadlinePlumbingRuleTest, QuietOnGoodFixture) {
  // Direct member forwarding, forwarding through a charged struct, no
  // budget parameter, and a callee without a budget overload.
  const std::vector<Finding> findings =
      LintFixture("deadline_plumbing_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(LockDisciplineRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("lock_discipline_bad.cc");
  // Direct blocking under a lock, a two-mutex ordering cycle (one finding
  // per edge), recursive acquisition, a transitive block through Drain,
  // and a CV wait parked with a second lock held.
  EXPECT_EQ(CountRule(findings, kLockDisciplineRule), 6);
  EXPECT_EQ(findings.size(), 6u);
  int cycle = 0;
  for (const Finding& finding : findings) {
    if (finding.message.find("lock-order cycle") != std::string::npos) {
      ++cycle;
    }
  }
  EXPECT_EQ(cycle, 2);
}

TEST(LockDisciplineRuleTest, QuietOnGoodFixture) {
  // Consistent ordering, scoped_lock, sanctioned CV wait, early unlock,
  // and blocking moved outside the critical section.
  const std::vector<Finding> findings = LintFixture("lock_discipline_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(PoolReentrancyRuleTest, FiresOnBadFixture) {
  const std::vector<Finding> findings = LintFixture("pool_reentrancy_bad.cc");
  // Nested ParallelFor, a CV wait in a task, Submit(...).get() inside a
  // fan-out, and a future .get() in a task.
  EXPECT_EQ(CountRule(findings, kPoolReentrancyRule), 4);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(PoolReentrancyRuleTest, QuietOnGoodFixture) {
  // Single-level fan-out, fire-and-forget tasks, blocking from the
  // caller's thread, and nesting routed through a named helper.
  const std::vector<Finding> findings = LintFixture("pool_reentrancy_good.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

// ---------------------------------------------------------------------------
// Suppression
// ---------------------------------------------------------------------------

TEST(SuppressionTest, JustifiedNolintSuppressesCleanly) {
  const std::vector<Finding> findings =
      LintFixture("suppression_justified.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(SuppressionTest, UnjustifiedNolintIsItselfAFinding) {
  const std::vector<Finding> findings =
      LintFixture("suppression_unjustified.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kNolintRule);
  // The determinism finding itself is suppressed; only the policeman fires.
  EXPECT_EQ(CountRule(findings, kDeterminismRule), 0);
}

TEST(SuppressionTest, WrongRuleNameDoesNotSuppress) {
  Options options;
  const std::vector<Finding> findings = LintContent(
      "a.cc",
      "#include <random>\n"
      "// NOLINT(qqo-header-hygiene): wrong rule for this line\n"
      "std::random_device d;  // NOLINT(qqo-ordered-output): also wrong\n",
      Policy{}, SymbolTable{}, options);
  EXPECT_EQ(CountRule(findings, kDeterminismRule), 1);
}

TEST(SuppressionTest, OneCommentSuppressesMultipleRules) {
  // One justified suppression comment naming two rules silences both
  // findings on its target line.
  const std::vector<Finding> findings =
      LintFixture("suppression_multirule.cc");
  EXPECT_EQ(findings.size(), 0u) << findings[0].message;
}

TEST(SuppressionTest, UnknownRulesAndSelfSuppressionArePoliced) {
  const std::vector<Finding> findings =
      LintFixture("suppression_policing.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, kNolintRule), 2);
  EXPECT_NE(findings[0].message.find("unknown rule 'qqo-made-up-rule'"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("cannot itself be suppressed"),
            std::string::npos);
}

TEST(SuppressionTest, RuleFilterRunsOnlySelectedRules) {
  Options options;
  options.rules = {kHeaderHygieneRule};
  const std::vector<Finding> findings = LintContent(
      "a.h", "#pragma once\nstd::random_device d;\n", Policy{}, SymbolTable{},
      options);
  EXPECT_EQ(findings.size(), 0u);
}

// ---------------------------------------------------------------------------
// CLI exit codes
// ---------------------------------------------------------------------------

int RunCli(const std::vector<std::string>& args, std::string* output) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunLintMain(args, out, err);
  if (output != nullptr) *output = out.str() + err.str();
  return code;
}

TEST(CliTest, CleanFileExitsZero) {
  std::string output;
  EXPECT_EQ(RunCli({FixturePath("determinism_good.cc")}, &output), 0);
  EXPECT_NE(output.find("0 finding(s)"), std::string::npos);
}

TEST(CliTest, FindingsExitOne) {
  std::string output;
  EXPECT_EQ(RunCli({FixturePath("determinism_bad.cc")}, &output), 1);
  EXPECT_NE(output.find("qqo-determinism"), std::string::npos);
}

TEST(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCli({}, nullptr), 2);
  EXPECT_EQ(RunCli({"--bogus-flag", "x.cc"}, nullptr), 2);
  EXPECT_EQ(RunCli({"--rule=not-a-rule", "x.cc"}, nullptr), 2);
  EXPECT_EQ(RunCli({FixturePath("does_not_exist.cc")}, nullptr), 2);
}

TEST(CliTest, ExcludeSkipsMatchingPaths) {
  // The whole fixture corpus is full of violations; excluding it must
  // bring the directory scan back to clean.
  std::string output;
  EXPECT_EQ(RunCli({"--exclude=data/lint", kLintDataDir}, &output), 0);
}

TEST(CliTest, RuleFlagRestrictsDirectoryScan) {
  // Only the header-hygiene rule: the determinism fixtures stop firing,
  // but the include-guard fixture still does.
  std::string output;
  EXPECT_EQ(
      RunCli({"--rule=qqo-header-hygiene", FixturePath("determinism_bad.cc")},
             &output),
      0);
  EXPECT_EQ(
      RunCli(
          {"--rule=qqo-header-hygiene", FixturePath("header_hygiene_bad.h")},
          &output),
      1);
}

TEST(CliTest, JsonFormatEmitsStructuredFindings) {
  std::string output;
  EXPECT_EQ(RunCli({"--format=json", FixturePath("suppression_policing.cc")},
                   &output),
            1);
  EXPECT_NE(output.find("{\"findings\":["), std::string::npos);
  EXPECT_NE(output.find("\"rule\":\"qqo-nolint\""), std::string::npos);
  EXPECT_NE(output.find("\"count\":2}"), std::string::npos);
  // Paths and messages pass through the JSON escaper; no raw quotes leak.
  EXPECT_NE(output.find("\"line\":4"), std::string::npos);
}

TEST(CliTest, JsonFormatOnCleanInputHasZeroCount) {
  std::string output;
  EXPECT_EQ(RunCli({"--format=json", FixturePath("determinism_good.cc")},
                   &output),
            0);
  EXPECT_NE(output.find("{\"findings\":[],\"count\":0}"), std::string::npos);
}

TEST(CliTest, GithubFormatEmitsWorkflowAnnotations) {
  std::string output;
  EXPECT_EQ(
      RunCli({"--format=github", FixturePath("suppression_policing.cc")},
             &output),
      1);
  EXPECT_NE(output.find("::error file="), std::string::npos);
  EXPECT_NE(output.find(",title=qqo_lint [qqo-nolint]::"), std::string::npos);
  EXPECT_NE(output.find("2 finding(s)"), std::string::npos);
}

TEST(CliTest, UnknownFormatExitsTwo) {
  std::string output;
  EXPECT_EQ(RunCli({"--format=xml", FixturePath("determinism_good.cc")},
                   &output),
            2);
  EXPECT_NE(output.find("unknown format"), std::string::npos);
}

// The repo itself must stay lint-clean: the same invocation as the `lint`
// ctest target, run in-process.
TEST(SelfLintTest, RepoIsClean) {
  std::string output;
  const int code =
      RunCli({"--exclude=tests/data", QQO_SOURCE_DIR "/src",
              QQO_SOURCE_DIR "/tools", QQO_SOURCE_DIR "/tests"},
             &output);
  EXPECT_EQ(code, 0) << output;
}

}  // namespace
}  // namespace qopt::lint
