// Tests for the Trotterized adiabatic-evolution simulator (Sec. 3.5).
#include <gtest/gtest.h>

#include "common/random.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "variational/adiabatic.h"

namespace qopt {
namespace {

QuboModel SmallConstraintQubo() {
  // Pick exactly one of three, costs 3/1/2 (ground state = variable 1).
  QuboModel qubo(3);
  const double penalty = 10.0;
  for (int i = 0; i < 3; ++i) qubo.AddLinear(i, -penalty);
  qubo.AddQuadratic(0, 1, 2 * penalty);
  qubo.AddQuadratic(0, 2, 2 * penalty);
  qubo.AddQuadratic(1, 2, 2 * penalty);
  qubo.AddLinear(0, 3.0);
  qubo.AddLinear(1, 1.0);
  qubo.AddLinear(2, 2.0);
  return qubo;
}

TEST(AdiabaticTest, SlowEvolutionReachesGroundState) {
  const QuboModel qubo = SmallConstraintQubo();
  AdiabaticOptions options;
  options.total_time = 30.0;
  options.steps = 400;
  options.seed = 3;
  const AdiabaticResult result = SolveQuboAdiabatically(qubo, options);
  EXPECT_GT(result.ground_state_probability, 0.5);
  EXPECT_NEAR(result.best_energy, SolveQuboBruteForce(qubo).best_energy,
              1e-9);
  EXPECT_EQ(result.best_bits, (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(AdiabaticTest, LongerEvolutionImprovesSuccessProbability) {
  // The adiabatic theorem (Eq. 24): larger T keeps the system in the
  // instantaneous ground state.
  const QuboModel qubo = SmallConstraintQubo();
  auto probability = [&](double total_time) {
    AdiabaticOptions options;
    options.total_time = total_time;
    options.steps = 300;
    return SolveQuboAdiabatically(qubo, options).ground_state_probability;
  };
  const double fast = probability(0.5);
  const double slow = probability(30.0);
  EXPECT_GT(slow, fast + 0.2);
}

TEST(AdiabaticTest, InstantQuenchStaysNearUniform) {
  // T -> 0 leaves the uniform superposition almost untouched, so the
  // ground-state mass is about (#optima)/2^n.
  QuboModel qubo(4);
  for (int i = 0; i < 4; ++i) qubo.AddLinear(i, 1.0);  // unique optimum 0000
  AdiabaticOptions options;
  options.total_time = 1e-4;
  options.steps = 10;
  const AdiabaticResult result = SolveQuboAdiabatically(qubo, options);
  EXPECT_NEAR(result.ground_state_probability, 1.0 / 16.0, 0.02);
}

class AdiabaticParamTest : public ::testing::TestWithParam<int> {};

TEST_P(AdiabaticParamTest, SampledBestMatchesBruteForceOnRandomQubos) {
  Rng rng(GetParam());
  QuboModel qubo(6);
  for (int i = 0; i < 6; ++i) qubo.AddLinear(i, rng.NextDouble(-2, 2));
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      if (rng.NextBool(0.5)) qubo.AddQuadratic(i, j, rng.NextDouble(-2, 2));
    }
  }
  AdiabaticOptions options;
  options.total_time = 40.0;
  options.steps = 400;
  options.shots = 2048;
  options.seed = GetParam();
  const AdiabaticResult result = SolveQuboAdiabatically(qubo, options);
  // With a long anneal and many shots the best sample is the optimum.
  EXPECT_NEAR(result.best_energy, SolveQuboBruteForce(qubo).best_energy,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdiabaticParamTest, ::testing::Range(0, 6));

// --- Spectral gap -------------------------------------------------------------

TEST(SpectralGapTest, MixerOnlyGapIsTwo) {
  // At s = 0, H = -sum X over n qubits: ground -n, first excited -n + 2.
  IsingModel trivial(3);  // all-zero problem Hamiltonian
  const auto [e0, e1] = std::pair<double, double>{0, 0};
  (void)e0;
  (void)e1;
  // The minimum over the sweep of an all-zero problem stays 2 until s = 1
  // where the problem Hamiltonian is fully degenerate (gap 0 at s = 1,
  // approached linearly): gap(s) = 2(1-s). The sweep minimum is ~0 at s=1.
  const SpectralGap gap = MinimumSpectralGap(trivial, 11);
  EXPECT_NEAR(gap.min_gap, 0.0, 1e-6);
  EXPECT_NEAR(gap.at_s, 1.0, 1e-9);
}

TEST(SpectralGapTest, ProblemEndpointGapMatchesSpectrum) {
  IsingModel ising(2);
  ising.AddField(0, 1.0);
  ising.AddField(1, 2.5);
  // Energies: -3.5, -1.5, 1.5, 3.5 -> gap at s=1 is 2.0. The sweep
  // minimum cannot exceed that endpoint value.
  const SpectralGap gap = MinimumSpectralGap(ising, 21);
  EXPECT_LE(gap.min_gap, 2.0 + 1e-6);
  EXPECT_GT(gap.min_gap, 0.0);
}

TEST(SpectralGapTest, DegenerateGroundStateVanishingGap) {
  // A coupling-only chain has a Z2-symmetric, exactly degenerate ground
  // state, so the sweep minimum gap collapses toward zero near s = 1 —
  // the regime where the adiabatic runtime bound (Eq. 24) blows up.
  IsingModel degenerate(3);
  degenerate.AddCoupling(0, 1, 0.5);
  degenerate.AddCoupling(1, 2, 0.5);
  const SpectralGap gap = MinimumSpectralGap(degenerate, 21);
  EXPECT_LT(gap.min_gap, 0.05);
  EXPECT_GT(gap.at_s, 0.7);
}

TEST(SpectralGapTest, SymmetryBreakingFieldOpensTheGap) {
  // Adding a field that makes the ground state unique lifts the
  // degeneracy, so the minimum gap grows.
  IsingModel degenerate(3);
  degenerate.AddCoupling(0, 1, 0.5);
  degenerate.AddCoupling(1, 2, 0.5);
  IsingModel broken = degenerate;
  broken.AddField(0, 0.4);
  broken.AddField(1, 0.4);
  broken.AddField(2, 0.4);
  EXPECT_GT(MinimumSpectralGap(broken, 21).min_gap,
            MinimumSpectralGap(degenerate, 21).min_gap + 0.05);
}

}  // namespace
}  // namespace qopt
