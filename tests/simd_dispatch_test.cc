// Asserts the SIMD dispatch layer's determinism contract: statevector
// amplitudes and annealing solutions are byte-identical across the scalar
// and vector (AVX2/NEON) kernels and across QQO_THREADS 1/2/8 — the
// vector kernels perform the same primitive FP operations in the same
// order as the scalar path and never contract into FMA, so SIMD level and
// thread count are pure performance knobs. Also covers the QQO_SIMD env
// parsing and override plumbing.

#include <gtest/gtest.h>

#include <complex>
#include <utility>
#include <vector>

#include "anneal/simulated_annealer.h"
#include "circuit/statevector.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "qubo/qubo_model.h"

namespace qopt {
namespace {

/// A circuit whose single-qubit layers hit every matrix shape the
/// ApplySingleQubit kernels see (real, imaginary, and mixed entries), at a
/// width where gates on qubit 0 exercise the stride==1 in-register path
/// and high qubits exercise the strided two-pairs-per-vector path.
QuantumCircuit AllKindsCircuit(int n) {
  QuantumCircuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.H(q);
  for (int q = 0; q + 1 < n; ++q) circuit.Rzz(q, q + 1, 0.3 + 0.01 * q);
  for (int q = 0; q < n; ++q) circuit.Rx(q, 0.5 + 0.02 * q);
  for (int q = 0; q < n; ++q) circuit.Ry(q, 0.25 + 0.02 * q);
  circuit.Y(0);
  circuit.Sx(1);
  circuit.X(n - 1);
  circuit.Cx(0, n - 1);
  circuit.Swap(1, n - 2);
  return circuit;
}

QuboModel RandomQubo(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, rng.NextDouble() * 2.0 - 1.0);
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextDouble() < density) {
        qubo.AddQuadratic(i, j, rng.NextDouble() * 2.0 - 1.0);
      }
    }
  }
  return qubo;
}

/// Runs `fn` under every (SIMD level, thread count) combination and
/// checks each result is EQ-identical to the scalar single-thread one.
template <typename Fn, typename Eq>
void ExpectInvariantAcrossSimdAndThreads(const Fn& fn, const Eq& expect_eq) {
  const SimdLevel best = BestSupportedSimdLevel();
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (best != SimdLevel::kScalar) levels.push_back(best);

  ScopedSimdLevel scalar_guard(SimdLevel::kScalar);
  ThreadPool one(1);
  ScopedDefaultPool one_guard(&one);
  const auto reference = fn();

  for (const SimdLevel level : levels) {
    ScopedSimdLevel level_guard(level);
    for (const int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      ScopedDefaultPool pool_guard(&pool);
      SCOPED_TRACE(std::string("simd=") + SimdLevelName(level) +
                   " threads=" + std::to_string(threads));
      expect_eq(reference, fn());
    }
  }
}

TEST(SimdDispatchTest, StatevectorAmplitudesBitIdentical) {
  // 15 qubits also crosses the ForEachBlock parallelization threshold, so
  // the SIMD kernels run under genuine multi-thread block decomposition.
  const QuantumCircuit circuit = AllKindsCircuit(15);
  ExpectInvariantAcrossSimdAndThreads(
      [&] { return SimulateCircuit(circuit).Amplitudes(); },
      [](const std::vector<std::complex<double>>& a,
         const std::vector<std::complex<double>>& b) {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].real(), b[i].real()) << "amplitude " << i;
          EXPECT_EQ(a[i].imag(), b[i].imag()) << "amplitude " << i;
        }
      });
}

TEST(SimdDispatchTest, AnnealingSolutionsIdenticalSparseAndDense) {
  // One QUBO on each side of the dense-row layout threshold: 0.1 stays on
  // the CSR path, 0.8 switches to contiguous coefficient rows. The layout
  // is a function of the problem alone, so results must not depend on
  // SIMD level or thread count either way.
  for (const double density : {0.1, 0.8}) {
    const QuboModel qubo = RandomQubo(40, density, 11);
    AnnealOptions options;
    options.num_reads = 8;
    options.num_sweeps = 150;
    options.seed = 5;
    options.flip_groups = {{0, 1, 2}, {10, 20, 30}};
    ExpectInvariantAcrossSimdAndThreads(
        [&] { return SolveQuboWithAnnealing(qubo, options); },
        [&](const AnnealResult& a, const AnnealResult& b) {
          EXPECT_EQ(a.best_bits, b.best_bits) << "density " << density;
          EXPECT_EQ(a.best_energy, b.best_energy);
          EXPECT_EQ(a.read_energies, b.read_energies);
        });
  }
}

TEST(SimdDispatchTest, ParseSimdLevelContract) {
  // "auto"/"" resolve to the best level this machine supports; explicit
  // names resolve to themselves or fail cleanly when unsupported.
  EXPECT_EQ(ParseSimdLevel("QQO_SIMD", "").value(), BestSupportedSimdLevel());
  EXPECT_EQ(ParseSimdLevel("QQO_SIMD", "auto").value(),
            BestSupportedSimdLevel());
  EXPECT_EQ(ParseSimdLevel("QQO_SIMD", "scalar").value(), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevel("QQO_SIMD", "0").value(), SimdLevel::kScalar);
  EXPECT_FALSE(ParseSimdLevel("QQO_SIMD", "warp-drive").ok());
#if QQO_SIMD_X86
  if (CpuSupportsAvx2()) {
    EXPECT_EQ(ParseSimdLevel("QQO_SIMD", "avx2").value(), SimdLevel::kAvx2);
  } else {
    EXPECT_FALSE(ParseSimdLevel("QQO_SIMD", "avx2").ok());
  }
#else
  EXPECT_FALSE(ParseSimdLevel("QQO_SIMD", "avx2").ok());
#endif
}

TEST(SimdDispatchTest, ScopedOverrideRestoresPreviousLevel) {
  const SimdLevel ambient = ActiveSimdLevel();
  {
    ScopedSimdLevel outer(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    {
      ScopedSimdLevel inner(BestSupportedSimdLevel());
      EXPECT_EQ(ActiveSimdLevel(), BestSupportedSimdLevel());
    }
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  }
  EXPECT_EQ(ActiveSimdLevel(), ambient);
}

}  // namespace
}  // namespace qopt
