#include <gtest/gtest.h>

#include <algorithm>

#include "anneal/chimera.h"
#include "anneal/embedding.h"
#include "anneal/embedding_composite.h"
#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "anneal/simulated_annealer.h"
#include "common/random.h"
#include "qubo/brute_force_solver.h"

namespace qopt {
namespace {

QuboModel MakeRandomQubo(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, rng.NextDouble(-2.0, 2.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(density)) {
        qubo.AddQuadratic(i, j, rng.NextDouble(-2.0, 2.0));
      }
    }
  }
  return qubo;
}

// --- Simulated annealing -----------------------------------------------------

class AnnealerParamTest : public ::testing::TestWithParam<int> {};

TEST_P(AnnealerParamTest, ReachesGroundStateOfRandomProblems) {
  const QuboModel qubo = MakeRandomQubo(12, 0.4, GetParam());
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  AnnealOptions options;
  options.num_reads = 20;
  options.num_sweeps = 400;
  options.seed = GetParam() + 1;
  const AnnealResult result = SolveQuboWithAnnealing(qubo, options);
  EXPECT_NEAR(result.best_energy, exact.best_energy, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AnnealerParamTest,
                         ::testing::Range(0, 6));

TEST(AnnealerTest, DeterministicForFixedSeed) {
  const QuboModel qubo = MakeRandomQubo(10, 0.5, 99);
  AnnealOptions options;
  options.seed = 42;
  const AnnealResult a = SolveQuboWithAnnealing(qubo, options);
  const AnnealResult b = SolveQuboWithAnnealing(qubo, options);
  EXPECT_EQ(a.best_bits, b.best_bits);
  EXPECT_EQ(a.read_energies, b.read_energies);
}

TEST(AnnealerTest, ReadEnergiesSizeMatchesReads) {
  const QuboModel qubo = MakeRandomQubo(6, 0.5, 1);
  AnnealOptions options;
  options.num_reads = 7;
  const AnnealResult result = SolveQuboWithAnnealing(qubo, options);
  EXPECT_EQ(result.read_energies.size(), 7u);
  const double best =
      *std::min_element(result.read_energies.begin(),
                        result.read_energies.end());
  EXPECT_NEAR(result.best_energy, best, 1e-8);
}

TEST(AnnealerTest, GroupFlipEnergiesMatchRecomputation) {
  // Pins the incremental group-flip delta (local-field cache + in-group
  // pairwise correction) to the ground truth: every read's tracked final
  // energy must agree with a from-scratch Energy() recompute of its bits,
  // on both sides of the dense-row layout threshold and with overlapping
  // groups. A wrong pairwise term corrupts the tracked energies without
  // necessarily changing which bits win, so this catches what the
  // ground-state tests cannot.
  for (const double density : {0.15, 0.7}) {
    const QuboModel qubo = MakeRandomQubo(14, density, 21);
    AnnealOptions options;
    options.num_reads = 10;
    options.num_sweeps = 250;
    options.seed = 17;
    options.flip_groups = {{0, 1}, {2, 5, 9}, {1, 2, 13}};
    const AnnealResult result = SolveQuboWithAnnealing(qubo, options);
    ASSERT_EQ(result.read_energies.size(), 10u);
    const double best = *std::min_element(result.read_energies.begin(),
                                          result.read_energies.end());
    EXPECT_NEAR(best, result.best_energy, 1e-8) << "density " << density;
    EXPECT_EQ(result.best_energy, qubo.Energy(result.best_bits));

    // The joint proposals must also still reach the optimum.
    const BruteForceResult exact = SolveQuboBruteForce(qubo);
    EXPECT_NEAR(result.best_energy, exact.best_energy, 1e-8);
  }
}

TEST(AnnealerTest, ConstantObjectiveHandled) {
  QuboModel qubo(3);
  qubo.AddOffset(5.0);
  const AnnealResult result = SolveQuboWithAnnealing(qubo);
  EXPECT_DOUBLE_EQ(result.best_energy, 5.0);
}

// --- Chimera ------------------------------------------------------------------

TEST(ChimeraTest, UnitCellIsK44) {
  const SimpleGraph cell = MakeChimera(1, 1, 4);
  EXPECT_EQ(cell.NumVertices(), 8);
  EXPECT_EQ(cell.NumEdges(), 16);
  for (int v = 0; v < 8; ++v) EXPECT_EQ(cell.Degree(v), 4);
}

TEST(ChimeraTest, PaperFigureFiveShape) {
  // Fig. 5: 32 qubits in 4 unit cells.
  const SimpleGraph graph = MakeChimera(2, 2, 4);
  EXPECT_EQ(graph.NumVertices(), 32);
  // 4 cells x 16 internal + 8 vertical + 8 horizontal external couplers.
  EXPECT_EQ(graph.NumEdges(), 80);
  // On the 2x2 boundary each qubit has one external coupler.
  EXPECT_EQ(graph.MaxDegree(), 5);
  EXPECT_TRUE(graph.IsConnected());
  // In a 3x3 fabric the center cell's qubits reach the full degree 6
  // ("each qubit is connected to at most six others", Sec. 3.6.2).
  EXPECT_EQ(MakeChimera(3, 3, 4).MaxDegree(), 6);
}

TEST(ChimeraTest, DWave2xScale) {
  const SimpleGraph graph = MakeChimera(12, 12, 4);
  EXPECT_EQ(graph.NumVertices(), 1152);  // the D-Wave 2X fabric
  EXPECT_EQ(graph.MaxDegree(), 6);
  EXPECT_TRUE(graph.IsConnected());
}

// --- Pegasus ------------------------------------------------------------------

TEST(PegasusTest, SmallInstanceInvariants) {
  const SimpleGraph graph = MakePegasus(3, /*fabric_only=*/false);
  EXPECT_EQ(graph.NumVertices(), 2 * 3 * 12 * 2);  // 144
  EXPECT_LE(graph.MaxDegree(), 15);
}

TEST(PegasusTest, FabricTrimKeepsConnectedDegreeBoundedGraph) {
  const SimpleGraph graph = MakePegasus(4);
  EXPECT_LE(graph.MaxDegree(), 15);
  EXPECT_TRUE(graph.IsConnected());
  // Fabric of P(m) has 24m(m-1) - 2*... qubits; for m=4: 264 before trim.
  EXPECT_GT(graph.NumVertices(), 200);
  EXPECT_LT(graph.NumVertices(), 288);
}

TEST(PegasusTest, InteriorQubitsReachDegree15) {
  const SimpleGraph graph = MakePegasus(6);
  EXPECT_EQ(graph.MaxDegree(), 15);
  int degree15 = 0;
  for (int v = 0; v < graph.NumVertices(); ++v) {
    if (graph.Degree(v) == 15) ++degree15;
  }
  // Most interior qubits have full degree.
  EXPECT_GT(degree15, graph.NumVertices() / 3);
}

TEST(PegasusTest, AdvantageScaleP16) {
  const SimpleGraph graph = MakePegasus(16);
  // D-Wave quotes "more than 5000 qubits" for the Advantage (P16 fabric).
  EXPECT_GT(graph.NumVertices(), 5000);
  EXPECT_LE(graph.NumVertices(), 5760);
  EXPECT_EQ(graph.MaxDegree(), 15);
  EXPECT_TRUE(graph.IsConnected());
}

TEST(PegasusTest, StrictlyDenserThanChimera) {
  // Pegasus' 15 couplers per qubit vs Chimera's 6 (Sec. 3.6.2).
  const SimpleGraph pegasus = MakePegasus(6);
  const SimpleGraph chimera = MakeChimera(6, 6, 4);
  const double pegasus_avg =
      2.0 * pegasus.NumEdges() / pegasus.NumVertices();
  const double chimera_avg =
      2.0 * chimera.NumEdges() / chimera.NumVertices();
  EXPECT_GT(pegasus_avg, chimera_avg + 3.0);
}

// --- Embedding validation -------------------------------------------------------

TEST(EmbeddingTest, StatsOfHandBuiltEmbedding) {
  Embedding embedding;
  embedding.chains = {{0, 1}, {2}, {3, 4, 5}};
  EXPECT_EQ(embedding.NumPhysicalQubits(), 6);
  EXPECT_EQ(embedding.MaxChainLength(), 3);
  EXPECT_DOUBLE_EQ(embedding.MeanChainLength(), 2.0);
}

TEST(EmbeddingTest, ValidateAcceptsCorrectEmbedding) {
  // Source: triangle. Target: 5-cycle -> vertex 2 needs chain {2,3,4}.
  SimpleGraph source(3);
  source.AddEdge(0, 1);
  source.AddEdge(1, 2);
  source.AddEdge(0, 2);
  SimpleGraph target(5);
  for (int i = 0; i < 5; ++i) target.AddEdge(i, (i + 1) % 5);
  Embedding embedding;
  embedding.chains = {{0}, {1}, {2, 3, 4}};
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, embedding, &error)) << error;
}

TEST(EmbeddingTest, ValidateRejectsDisconnectedChain) {
  SimpleGraph source(1);
  SimpleGraph target(3);
  target.AddEdge(0, 1);
  Embedding embedding;
  embedding.chains = {{0, 2}};
  std::string error;
  EXPECT_FALSE(ValidateEmbedding(source, target, embedding, &error));
  EXPECT_NE(error.find("not connected"), std::string::npos);
}

TEST(EmbeddingTest, ValidateRejectsOverlappingChains) {
  SimpleGraph source(2);
  SimpleGraph target(2);
  target.AddEdge(0, 1);
  Embedding embedding;
  embedding.chains = {{0}, {0}};
  std::string error;
  EXPECT_FALSE(ValidateEmbedding(source, target, embedding, &error));
}

TEST(EmbeddingTest, ValidateRejectsMissingCoupler) {
  SimpleGraph source(2);
  source.AddEdge(0, 1);
  SimpleGraph target(3);
  target.AddEdge(0, 1);  // vertex 2 isolated
  Embedding embedding;
  embedding.chains = {{0}, {2}};
  std::string error;
  EXPECT_FALSE(ValidateEmbedding(source, target, embedding, &error));
  EXPECT_NE(error.find("coupler"), std::string::npos);
}

// --- Minor embedder -------------------------------------------------------------

TEST(MinorEmbedderTest, IdentityWhenSourceIsSubgraph) {
  SimpleGraph source(3);
  source.AddEdge(0, 1);
  source.AddEdge(1, 2);
  const SimpleGraph target = MakeChimera(1, 1, 4);
  const auto embedding = FindMinorEmbedding(source, target);
  ASSERT_TRUE(embedding.has_value());
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, *embedding, &error)) << error;
}

TEST(MinorEmbedderTest, TriangleIntoCycleNeedsChains) {
  SimpleGraph source(3);
  source.AddEdge(0, 1);
  source.AddEdge(1, 2);
  source.AddEdge(0, 2);
  SimpleGraph target(5);
  for (int i = 0; i < 5; ++i) target.AddEdge(i, (i + 1) % 5);
  const auto embedding = FindMinorEmbedding(source, target);
  ASSERT_TRUE(embedding.has_value());
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, *embedding, &error)) << error;
  EXPECT_GT(embedding->NumPhysicalQubits(), 3);  // chains are required
}

TEST(MinorEmbedderTest, K5IntoChimeraCellImpossible) {
  // K5 needs treewidth the 8-qubit cell cannot offer: 5 chains over 8
  // vertices with every pair coupled. The embedder must give up cleanly.
  SimpleGraph source(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) source.AddEdge(i, j);
  }
  SimpleGraph small(3);
  small.AddEdge(0, 1);
  small.AddEdge(1, 2);
  EXPECT_FALSE(FindMinorEmbedding(source, small).has_value());
}

TEST(MinorEmbedderTest, K4IntoChimeraCell) {
  SimpleGraph source(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) source.AddEdge(i, j);
  }
  const SimpleGraph target = MakeChimera(1, 1, 4);
  const auto embedding = FindMinorEmbedding(source, target);
  ASSERT_TRUE(embedding.has_value());
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, *embedding, &error)) << error;
  // K4 in C(1,1,4) needs chains of length 2 (the canonical embedding).
  EXPECT_LE(embedding->NumPhysicalQubits(), 8);
}

class MinorEmbedderParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MinorEmbedderParamTest, RandomGraphsIntoChimera) {
  Rng rng(GetParam());
  const int n = 10;
  SimpleGraph source(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(0.3)) source.AddEdge(i, j);
    }
  }
  const SimpleGraph target = MakeChimera(4, 4, 4);
  EmbedOptions options;
  options.seed = GetParam() + 7;
  const auto embedding = FindMinorEmbedding(source, target, options);
  ASSERT_TRUE(embedding.has_value());
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, *embedding, &error)) << error;
}

TEST_P(MinorEmbedderParamTest, RandomGraphsIntoPegasus) {
  Rng rng(GetParam() + 100);
  const int n = 16;
  SimpleGraph source(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(0.35)) source.AddEdge(i, j);
    }
  }
  const SimpleGraph target = MakePegasus(3);
  EmbedOptions options;
  options.seed = GetParam() + 11;
  const auto embedding = FindMinorEmbedding(source, target, options);
  ASSERT_TRUE(embedding.has_value());
  std::string error;
  EXPECT_TRUE(ValidateEmbedding(source, target, *embedding, &error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinorEmbedderParamTest, ::testing::Range(0, 5));

TEST(MinorEmbedderTest, IsolatedSourceVerticesGetChains) {
  SimpleGraph source(4);  // no edges at all
  const SimpleGraph target = MakeChimera(1, 1, 4);
  const auto embedding = FindMinorEmbedding(source, target);
  ASSERT_TRUE(embedding.has_value());
  for (const auto& chain : embedding->chains) EXPECT_EQ(chain.size(), 1u);
}

// --- Embedding composite ----------------------------------------------------------

TEST(EmbeddingCompositeTest, SolvesQuboThroughChimeraTopology) {
  const QuboModel qubo = MakeRandomQubo(8, 0.5, 5);
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  EmbeddedSolveOptions options;
  options.anneal.num_reads = 30;
  options.anneal.num_sweeps = 500;
  options.anneal.seed = 3;
  options.embed.seed = 3;
  const auto result = SolveQuboOnTopology(qubo, MakeChimera(4, 4, 4), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, exact.best_energy, 1e-6);
  EXPECT_GE(result->chain_break_fraction, 0.0);
  EXPECT_LE(result->chain_break_fraction, 1.0);
}

TEST(EmbeddingCompositeTest, SolvesQuboThroughPegasusTopology) {
  const QuboModel qubo = MakeRandomQubo(10, 0.4, 9);
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  EmbeddedSolveOptions options;
  options.anneal.num_reads = 30;
  options.anneal.num_sweeps = 500;
  options.anneal.seed = 4;
  options.embed.seed = 4;
  const auto result = SolveQuboOnTopology(qubo, MakePegasus(3), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, exact.best_energy, 1e-6);
}

TEST(EmbeddingCompositeTest, ReturnsNulloptWhenEmbeddingImpossible) {
  QuboModel qubo(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) qubo.AddQuadratic(i, j, 1.0);
  }
  SimpleGraph tiny(3);
  tiny.AddEdge(0, 1);
  tiny.AddEdge(1, 2);
  EXPECT_FALSE(SolveQuboOnTopology(qubo, tiny).has_value());
}

}  // namespace
}  // namespace qopt
