// End-to-end pipelines and the qualitative "shape" claims of the paper's
// evaluation, verified at test scale.
#include <gtest/gtest.h>

#include "anneal/minor_embedder.h"
#include "anneal/pegasus.h"
#include "core/device_model.h"
#include "core/quantum_optimizer.h"
#include "core/resource_estimator.h"
#include "bilp/bilp_to_qubo.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace qopt {
namespace {

TEST(IntegrationTest, MqoQaoaPipelineMatchesExhaustiveOptimum) {
  MqoGeneratorOptions gen;
  gen.num_queries = 2;
  gen.plans_per_query = 3;
  gen.saving_density = 0.5;
  gen.seed = 21;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoSolution exact = SolveMqoExhaustive(problem);
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.variational.max_iterations = 150;
  options.variational.shots = 2048;
  options.seed = 23;
  const MqoSolveReport report = SolveMqo(problem, options);
  ASSERT_TRUE(report.valid);
  EXPECT_NEAR(report.solution.cost, exact.cost, 1e-9);
}

TEST(IntegrationTest, MqoVqePipelineProducesValidSolution) {
  MqoGeneratorOptions gen;
  gen.num_queries = 2;
  gen.plans_per_query = 3;
  gen.seed = 31;
  const MqoProblem problem = GenerateMqoProblem(gen);
  OptimizerOptions options;
  options.backend = Backend::kVqe;
  options.variational.max_iterations = 250;
  options.variational.shots = 2048;
  options.seed = 33;
  const MqoSolveReport report = SolveMqo(problem, options);
  EXPECT_TRUE(report.valid);
}

TEST(IntegrationTest, JoinOrderAnnealerEmulationPipeline) {
  QueryGraph graph({10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.1);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  encoder.safe_slack_bounds = true;
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 4;
  options.embedded.anneal.num_reads = 100;
  options.embedded.anneal.num_sweeps = 4000;
  options.seed = 5;
  const JoinOrderSolveReport report = SolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(IsValidJoinOrder(graph, report.solution.order));
}

// --- Shape claims -------------------------------------------------------------

TEST(ShapeTest, QaoaDepthGrowsWithPlansPerQuery) {
  // Fig. 8: at a fixed total number of plans, more PPQ -> denser E_M
  // cliques -> deeper QAOA circuits.
  auto mean_ideal_depth = [](int queries, int ppq) {
    double total = 0.0;
    const int instances = 5;
    for (int i = 0; i < instances; ++i) {
      MqoGeneratorOptions gen;
      gen.num_queries = queries;
      gen.plans_per_query = ppq;
      gen.saving_density = 0.3;
      gen.seed = 100 + i;
      const MqoQuboEncoding encoding =
          EncodeMqoAsQubo(GenerateMqoProblem(gen));
      total += BuildQaoaTemplate(QuboToIsing(encoding.qubo)).Depth();
    }
    return total / instances;
  };
  const double depth_4ppq = mean_ideal_depth(4, 4);   // 16 plans
  const double depth_8ppq = mean_ideal_depth(2, 8);   // 16 plans
  EXPECT_GT(depth_8ppq, depth_4ppq);
}

TEST(ShapeTest, VqeTranspilationOverheadExceedsQaoaOverhead) {
  // Fig. 9: the full-entanglement VQE ansatz suffers far more from the
  // sparse heavy-hex topology than QAOA does.
  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 4;
  gen.seed = 7;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  GateEstimateOptions options;
  options.transpile_trials = 5;
  const GateResourceEstimate estimate = EstimateGateResources(
      encoding.qubo, MakeMumbai27(), MumbaiDevice(), options);
  const double vqe_overhead =
      estimate.vqe_depth_device / estimate.vqe_depth_ideal;
  const double qaoa_overhead =
      estimate.qaoa_depth_device / estimate.qaoa_depth_ideal;
  EXPECT_GT(vqe_overhead, qaoa_overhead);
}

TEST(ShapeTest, VqeIdealDepthIndependentOfQuboDensity) {
  // Sec. 5.3.2: VQE depth depends only on the number of qubits.
  const QuantumCircuit a = BuildVqeTemplate(10, 3);
  const QuantumCircuit b = BuildVqeTemplate(10, 3);
  EXPECT_EQ(a.Depth(), b.Depth());
  EXPECT_GT(BuildVqeTemplate(14, 3).Depth(), a.Depth());
}

TEST(ShapeTest, PrecisionStrategyYieldsMoreQuadraticTerms) {
  // Table 4: at equal qubit counts, lowering omega (problem 3) produces
  // far more quadratic terms than adding predicates (problem 1).
  QueryGraph graph1({10.0, 10.0, 10.0});
  graph1.AddPredicate(0, 1, 0.5);
  graph1.AddPredicate(1, 2, 0.5);
  graph1.AddPredicate(0, 2, 0.5);
  JoinOrderEncoderOptions options1;
  options1.thresholds = {10.0};
  const JoinOrderEncoding enc1 = EncodeJoinOrderAsBilp(graph1, options1);

  QueryGraph graph3({10.0, 10.0, 10.0});
  JoinOrderEncoderOptions options3;
  options3.thresholds = {10.0};
  options3.precision_decimals = 3;
  const JoinOrderEncoding enc3 = EncodeJoinOrderAsBilp(graph3, options3);

  ASSERT_EQ(enc1.bilp.NumVariables(), 30);  // Table 4 qubit counts
  ASSERT_EQ(enc3.bilp.NumVariables(), 30);
  const int terms1 = EncodeBilpAsQubo(enc1.bilp).qubo.NumQuadraticTerms();
  const int terms3 = EncodeBilpAsQubo(enc3.bilp).qubo.NumQuadraticTerms();
  EXPECT_GT(terms3, terms1);
}

TEST(ShapeTest, QubitScalingSuperlinearInRelations) {
  // Fig. 11: the qubit count grows at least quadratically with relations.
  const auto t10 = CountJoinOrderQubits(10, 9, 1, 1.0);
  const auto t20 = CountJoinOrderQubits(20, 19, 1, 1.0);
  const auto t40 = CountJoinOrderQubits(40, 39, 1, 1.0);
  EXPECT_GT(t20.total, 3 * t10.total);
  EXPECT_GT(t40.total, 3 * t20.total);
}

TEST(ShapeTest, EmbeddingNeedsMultiplePhysicalQubitsPerLogical) {
  // Fig. 14: chains make the physical qubit count a small multiple of the
  // logical one.
  QueryGraph graph({10.0, 10.0, 10.0, 10.0});
  graph.AddPredicate(0, 1, 0.5);
  graph.AddPredicate(1, 2, 0.5);
  graph.AddPredicate(2, 3, 0.5);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0};
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, encoder);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  const SimpleGraph source = qubo.qubo.InteractionGraph();
  EmbedOptions options;
  options.seed = 3;
  const auto embedding = FindMinorEmbedding(source, MakePegasus(6), options);
  ASSERT_TRUE(embedding.has_value());
  EXPECT_GT(embedding->NumPhysicalQubits(), source.NumVertices());
  EXPECT_LT(embedding->MeanChainLength(), 8.0);
}

TEST(ShapeTest, MumbaiRoutingInflatesDepth) {
  // Fig. 8 right vs left: the state-of-the-art topology increases QAOA
  // depth substantially over the optimal topology.
  MqoGeneratorOptions gen;
  gen.num_queries = 5;
  gen.plans_per_query = 4;
  gen.seed = 77;
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(GenerateMqoProblem(gen));
  const QuantumCircuit qaoa = BuildQaoaTemplate(QuboToIsing(encoding.qubo));
  const CouplingMap full = MakeFullyConnected(20);
  const CouplingMap mumbai = MakeMumbai27();
  const double ideal = TranspiledDepthStats(qaoa, full, 1).mean;
  const double device = TranspiledDepthStats(qaoa, mumbai, 5).mean;
  EXPECT_GT(device, 1.5 * ideal);
}

}  // namespace
}  // namespace qopt
