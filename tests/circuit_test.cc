#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "circuit/quantum_circuit.h"
#include "circuit/statevector.h"
#include "common/random.h"
#include "qubo/conversions.h"
#include "qubo/qubo_model.h"

namespace qopt {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(QuantumCircuitTest, DepthOfSequentialGatesOnOneQubit) {
  QuantumCircuit c(1);
  c.H(0);
  c.X(0);
  c.Z(0);
  EXPECT_EQ(c.Depth(), 3);
}

TEST(QuantumCircuitTest, ParallelGatesShareALayer) {
  QuantumCircuit c(3);
  c.H(0);
  c.H(1);
  c.H(2);
  EXPECT_EQ(c.Depth(), 1);
}

TEST(QuantumCircuitTest, TwoQubitGateSynchronizesLayers) {
  QuantumCircuit c(2);
  c.H(0);
  c.H(0);
  c.Cx(0, 1);  // qubit 1 is fresh but must wait for qubit 0's layer 2
  EXPECT_EQ(c.Depth(), 3);
}

TEST(QuantumCircuitTest, CountOpsAndTwoQubitCount) {
  QuantumCircuit c(3);
  c.H(0);
  c.Cx(0, 1);
  c.Cx(1, 2);
  c.Rzz(0, 2, 0.3);
  const auto counts = c.CountOps();
  EXPECT_EQ(counts.at("h"), 1);
  EXPECT_EQ(counts.at("cx"), 2);
  EXPECT_EQ(counts.at("rzz"), 1);
  EXPECT_EQ(c.TwoQubitGateCount(), 3);
}

TEST(QuantumCircuitTest, BindReplacesParameters) {
  QuantumCircuit c(2);
  c.Ry(0, 0.0);
  c.Cx(0, 1);
  c.Rz(1, 0.0);
  EXPECT_EQ(c.NumParameters(), 2);
  const QuantumCircuit bound = c.Bind({1.5, -0.5});
  EXPECT_DOUBLE_EQ(bound.Gates()[0].param, 1.5);
  EXPECT_DOUBLE_EQ(bound.Gates()[2].param, -0.5);
}

TEST(QuantumCircuitTest, ExtendAppendsGates) {
  QuantumCircuit a(2);
  a.H(0);
  QuantumCircuit b(2);
  b.Cx(0, 1);
  a.Extend(b);
  EXPECT_EQ(a.NumGates(), 2);
}

// --- Statevector ----------------------------------------------------------

TEST(StatevectorTest, InitialStateIsZeroKet) {
  Statevector state(2);
  EXPECT_DOUBLE_EQ(std::norm(state.Amplitudes()[0]), 1.0);
  EXPECT_DOUBLE_EQ(state.NormSquared(), 1.0);
}

TEST(StatevectorTest, XFlipsBit) {
  QuantumCircuit c(2);
  c.X(1);
  const Statevector state = SimulateCircuit(c);
  // Little-endian: qubit 1 set -> index 2.
  EXPECT_NEAR(std::norm(state.Amplitudes()[2]), 1.0, 1e-12);
}

TEST(StatevectorTest, HadamardMakesBalancedSuperposition) {
  QuantumCircuit c(1);
  c.H(0);
  const Statevector state = SimulateCircuit(c);
  EXPECT_NEAR(std::norm(state.Amplitudes()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(state.Amplitudes()[1]), 0.5, 1e-12);
}

TEST(StatevectorTest, BellStateFromHAndCnot) {
  QuantumCircuit c(2);
  c.H(0);
  c.Cx(0, 1);
  const Statevector state = SimulateCircuit(c);
  EXPECT_NEAR(std::norm(state.Amplitudes()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(state.Amplitudes()[3]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(state.Amplitudes()[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::norm(state.Amplitudes()[2]), 0.0, 1e-12);
}

TEST(StatevectorTest, GhzStateOnFourQubits) {
  QuantumCircuit c(4);
  c.H(0);
  for (int q = 0; q + 1 < 4; ++q) c.Cx(q, q + 1);
  const Statevector state = SimulateCircuit(c);
  EXPECT_NEAR(std::norm(state.Amplitudes()[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(state.Amplitudes()[15]), 0.5, 1e-12);
}

TEST(StatevectorTest, ThreeCnotsSwapStates) {
  // The paper's Fig. 2: |01> -> |10> with three CNOTs.
  QuantumCircuit c(2);
  c.X(0);  // prepare |01> in (q1 q0) notation: qubit 0 = 1
  c.Cx(0, 1);
  c.Cx(1, 0);
  c.Cx(0, 1);
  const Statevector state = SimulateCircuit(c);
  // Afterwards qubit 1 = 1, qubit 0 = 0 -> index 2.
  EXPECT_NEAR(std::norm(state.Amplitudes()[2]), 1.0, 1e-12);
}

TEST(StatevectorTest, SwapGateMatchesThreeCnots) {
  Rng rng(3);
  QuantumCircuit prep(2);
  prep.Ry(0, rng.NextDouble(0, kPi));
  prep.Ry(1, rng.NextDouble(0, kPi));
  prep.Cx(0, 1);

  QuantumCircuit with_swap = prep;
  with_swap.Swap(0, 1);
  QuantumCircuit with_cnots = prep;
  with_cnots.Cx(0, 1);
  with_cnots.Cx(1, 0);
  with_cnots.Cx(0, 1);

  const auto a = SimulateCircuit(with_swap).Amplitudes();
  const auto b = SimulateCircuit(with_cnots).Amplitudes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(StatevectorTest, CzIsSymmetricPhase) {
  QuantumCircuit c(2);
  c.H(0);
  c.H(1);
  c.Cz(0, 1);
  const auto amps = SimulateCircuit(c).Amplitudes();
  EXPECT_NEAR(amps[3].real(), -0.5, 1e-12);
  EXPECT_NEAR(amps[0].real(), 0.5, 1e-12);
}

TEST(StatevectorTest, RzzAppliesCorrectPhases) {
  const double theta = 0.7;
  QuantumCircuit c(2);
  c.H(0);
  c.H(1);
  c.Rzz(0, 1, theta);
  const auto amps = SimulateCircuit(c).Amplitudes();
  const std::complex<double> equal =
      std::exp(std::complex<double>(0, -theta / 2.0)) * 0.5;
  const std::complex<double> diff =
      std::exp(std::complex<double>(0, theta / 2.0)) * 0.5;
  EXPECT_NEAR(std::abs(amps[0] - equal), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[3] - equal), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[1] - diff), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[2] - diff), 0.0, 1e-12);
}

TEST(StatevectorTest, RzzEqualsCxRzCx) {
  const double theta = 1.23;
  QuantumCircuit prep(2);
  prep.H(0);
  prep.Ry(1, 0.4);

  QuantumCircuit direct = prep;
  direct.Rzz(0, 1, theta);
  QuantumCircuit decomposed = prep;
  decomposed.Cx(0, 1);
  decomposed.Rz(1, theta);
  decomposed.Cx(0, 1);

  const auto a = SimulateCircuit(direct).Amplitudes();
  const auto b = SimulateCircuit(decomposed).Amplitudes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

class UnitarityTest : public ::testing::TestWithParam<int> {};

TEST_P(UnitarityTest, RandomCircuitPreservesNorm) {
  Rng rng(GetParam());
  QuantumCircuit c(5);
  for (int g = 0; g < 40; ++g) {
    const int q = rng.NextInt(0, 4);
    switch (rng.NextInt(0, 7)) {
      case 0: c.H(q); break;
      case 1: c.X(q); break;
      case 2: c.Y(q); break;
      case 3: c.Sx(q); break;
      case 4: c.Rx(q, rng.NextDouble(-kPi, kPi)); break;
      case 5: c.Ry(q, rng.NextDouble(-kPi, kPi)); break;
      case 6: c.Rz(q, rng.NextDouble(-kPi, kPi)); break;
      default: {
        int r = rng.NextInt(0, 4);
        while (r == q) r = rng.NextInt(0, 4);
        if (rng.NextBool()) {
          c.Cx(q, r);
        } else {
          c.Rzz(q, r, rng.NextDouble(-kPi, kPi));
        }
        break;
      }
    }
  }
  EXPECT_NEAR(SimulateCircuit(c).NormSquared(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, UnitarityTest, ::testing::Range(0, 8));

TEST(IsingEnergyTableTest, MatchesDirectEvaluation) {
  Rng rng(9);
  IsingModel ising(5);
  for (int i = 0; i < 5; ++i) ising.AddField(i, rng.NextDouble(-2, 2));
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      if (rng.NextBool(0.5)) ising.AddCoupling(i, j, rng.NextDouble(-2, 2));
    }
  }
  ising.AddOffset(0.7);
  const auto table = IsingEnergyTable(ising);
  ASSERT_EQ(table.size(), 32u);
  for (std::uint64_t index = 0; index < 32; ++index) {
    std::vector<int> spins(5);
    for (int q = 0; q < 5; ++q) spins[q] = (index >> q) & 1 ? 1 : -1;
    EXPECT_NEAR(table[index], ising.Energy(spins), 1e-9);
  }
}

TEST(StatevectorTest, IsingExpectationOfBasisState) {
  IsingModel ising(2);
  ising.AddField(0, 1.0);
  ising.AddCoupling(0, 1, 2.0);
  QuantumCircuit c(2);
  c.X(0);  // |01> in (q1 q0): spins s0 = +1, s1 = -1
  const Statevector state = SimulateCircuit(c);
  EXPECT_NEAR(state.IsingExpectation(ising), 1.0 - 2.0, 1e-12);
}

TEST(StatevectorTest, IsingExpectationOfSuperposition) {
  IsingModel ising(1);
  ising.AddField(0, 3.0);
  QuantumCircuit c(1);
  c.H(0);
  EXPECT_NEAR(SimulateCircuit(c).IsingExpectation(ising), 0.0, 1e-12);
}

TEST(StatevectorTest, SamplesFollowProbabilities) {
  QuantumCircuit c(1);
  c.Ry(0, 2.0 * std::acos(std::sqrt(0.8)));  // P(0) = 0.8
  const Statevector state = SimulateCircuit(c);
  Rng rng(5);
  int zeros = 0;
  for (int s = 0; s < 5000; ++s) {
    if (state.Sample(&rng)[0] == 0) ++zeros;
  }
  EXPECT_NEAR(zeros / 5000.0, 0.8, 0.03);
}

TEST(StatevectorTest, MostProbableBits) {
  QuantumCircuit c(3);
  c.X(0);
  c.X(2);
  const auto bits = SimulateCircuit(c).MostProbableBits();
  EXPECT_EQ(bits, (std::vector<std::uint8_t>{1, 0, 1}));
}

}  // namespace
}  // namespace qopt
