// Robustness and property tests across modules: semantic preservation of
// commutation-aware routing, cluster-move annealing correctness, encoder
// pruning equivalence, and assorted edge cases.
#include <gtest/gtest.h>

#include <complex>
#include <numbers>

#include "anneal/chimera.h"
#include "anneal/embedding_composite.h"
#include "bilp/bilp_to_qubo.h"
#include "core/quantum_optimizer.h"
#include "anneal/simulated_annealer.h"
#include "bilp/bilp_branch_and_bound.h"
#include "circuit/statevector.h"
#include "common/random.h"
#include "joinorder/join_order.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "variational/qaoa.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "transpile/coupling_map.h"
#include "transpile/layout.h"
#include "transpile/swap_router.h"

namespace qopt {
namespace {

constexpr double kPi = std::numbers::pi;

double Fidelity(const std::vector<std::complex<double>>& a,
                const std::vector<std::complex<double>>& b) {
  std::complex<double> inner = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) inner += std::conj(a[i]) * b[i];
  return std::norm(inner);
}

QuboModel MakeRandomQubo(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, rng.NextDouble(-2.0, 2.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(density)) {
        qubo.AddQuadratic(i, j, rng.NextDouble(-2.0, 2.0));
      }
    }
  }
  return qubo;
}

// --- Commutation-aware routing preserves semantics -----------------------------

class CommuteRoutingTest : public ::testing::TestWithParam<int> {};

TEST_P(CommuteRoutingTest, ReorderedDiagonalRunsPreserveState) {
  Rng rng(GetParam());
  const int n = 5;
  QuantumCircuit circuit(n);
  // Mix of diagonal runs (rz, rzz, cz) and non-commuting gates.
  for (int g = 0; g < 30; ++g) {
    const int a = rng.NextInt(0, n - 1);
    int b = rng.NextInt(0, n - 1);
    while (b == a) b = rng.NextInt(0, n - 1);
    switch (rng.NextInt(0, 4)) {
      case 0: circuit.Rzz(a, b, rng.NextDouble(-kPi, kPi)); break;
      case 1: circuit.Rz(a, rng.NextDouble(-kPi, kPi)); break;
      case 2: circuit.Cz(a, b); break;
      case 3: circuit.H(a); break;
      default: circuit.Cx(a, b); break;
    }
  }
  const CouplingMap line = MakeLinear(n);
  Rng route_rng(GetParam() + 99);
  RouterOptions router;  // commute + lookahead on
  const RoutedCircuit routed =
      RouteCircuit(circuit, line, TrivialLayout(n), &route_rng, router);

  const auto expected = SimulateCircuit(circuit).Amplitudes();
  const auto physical = SimulateCircuit(routed.circuit).Amplitudes();
  std::vector<std::complex<double>> actual(expected.size(), 0.0);
  for (std::size_t p_index = 0; p_index < physical.size(); ++p_index) {
    std::size_t l_index = 0;
    for (int l = 0; l < n; ++l) {
      const int p = routed.final_layout[static_cast<std::size_t>(l)];
      if (p_index & (std::size_t{1} << p)) l_index |= std::size_t{1} << l;
    }
    actual[l_index] += physical[p_index];
  }
  EXPECT_NEAR(Fidelity(expected, actual), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommuteRoutingTest, ::testing::Range(0, 8));

TEST(CommuteRoutingTest, CommuteOffAlsoPreservesSemantics) {
  QuantumCircuit circuit(4);
  circuit.H(0);
  circuit.Rzz(0, 3, 0.7);
  circuit.Rzz(1, 2, -0.4);
  circuit.Cx(0, 2);
  const CouplingMap line = MakeLinear(4);
  for (const bool commute : {true, false}) {
    Rng rng(5);
    RouterOptions router;
    router.commute_diagonal = commute;
    router.lookahead = 0;
    const RoutedCircuit routed =
        RouteCircuit(circuit, line, TrivialLayout(4), &rng, router);
    for (const Gate& g : routed.circuit.Gates()) {
      if (g.NumQubits() == 2) {
        EXPECT_TRUE(line.AreCoupled(g.qubit0, g.qubit1));
      }
    }
  }
}

TEST(CommuteRoutingTest, CommutationReducesSwapCount) {
  // A QAOA-like all-pairs RZZ layer on a line benefits from reordering.
  const int n = 8;
  QuantumCircuit circuit(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) circuit.Rzz(i, j, 0.3);
  }
  const CouplingMap line = MakeLinear(n);
  auto swaps_with = [&](bool commute) {
    Rng rng(3);
    RouterOptions router;
    router.commute_diagonal = commute;
    const RoutedCircuit routed =
        RouteCircuit(circuit, line, TrivialLayout(n), &rng, router);
    const auto counts = routed.circuit.CountOps();
    auto it = counts.find("swap");
    return it == counts.end() ? 0 : it->second;
  };
  EXPECT_LT(swaps_with(true), swaps_with(false));
}

// --- Cluster-move annealing -----------------------------------------------------

class ClusterMoveTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterMoveTest, GroupFlipsKeepEnergyBookkeepingConsistent) {
  const QuboModel qubo = MakeRandomQubo(10, 0.5, GetParam());
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  Rng rng(GetParam());
  AnnealOptions options;
  options.num_reads = 15;
  options.num_sweeps = 300;
  options.seed = GetParam() + 3;
  // Random overlapping groups; correctness must not depend on their shape.
  for (int g = 0; g < 4; ++g) {
    std::vector<int> group;
    for (int i = 0; i < 10; ++i) {
      if (rng.NextBool(0.4)) group.push_back(i);
    }
    if (!group.empty()) options.flip_groups.push_back(group);
  }
  const AnnealResult result = SolveQuboWithAnnealing(qubo, options);
  // Reported energy must match a fresh evaluation, and never beat exact.
  EXPECT_NEAR(result.best_energy, qubo.Energy(result.best_bits), 1e-9);
  EXPECT_GE(result.best_energy, exact.best_energy - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterMoveTest, ::testing::Range(0, 6));

TEST(ClusterMoveTest, GroupMovesEscapeChainBarriers) {
  // Two strongly ferromagnetically coupled pairs with a weak preference
  // for the all-ones state: single flips must cross a huge barrier, a
  // pair flip crosses none.
  QuboModel qubo(4);
  const double strong = 100.0;
  // Pairs (0,1) and (2,3): x0 == x1 and x2 == x3 strongly preferred.
  for (const auto& [a, b] : {std::pair<int, int>{0, 1}, {2, 3}}) {
    qubo.AddQuadratic(a, b, -2.0 * strong);
    qubo.AddLinear(a, strong);
    qubo.AddLinear(b, strong);
  }
  // Slight preference for ones.
  for (int i = 0; i < 4; ++i) qubo.AddLinear(i, -0.5);
  AnnealOptions options;
  options.num_reads = 5;
  options.num_sweeps = 100;
  options.seed = 1;
  options.flip_groups = {{0, 1}, {2, 3}};
  const AnnealResult result = SolveQuboWithAnnealing(qubo, options);
  EXPECT_NEAR(result.best_energy, SolveQuboBruteForce(qubo).best_energy,
              1e-9);
}

// --- Encoder pruning equivalence --------------------------------------------------

class PruningEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PruningEquivalenceTest, PrunedModelKeepsOptimalObjective) {
  QueryGeneratorOptions gen;
  gen.num_relations = 3;
  gen.num_predicates = 2;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 100.0;
  gen.selectivity_min = 0.2;
  gen.seed = GetParam();
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions base;
  base.thresholds = {10.0, 1000.0, 1e7};  // 1e7 is unreachable
  base.safe_slack_bounds = true;
  JoinOrderEncoderOptions pruned = base;
  pruned.prune_unreachable_cto = true;

  const auto full_solution =
      SolveBilpBranchAndBound(EncodeJoinOrderAsBilp(graph, base).bilp);
  const auto pruned_solution =
      SolveBilpBranchAndBound(EncodeJoinOrderAsBilp(graph, pruned).bilp);
  ASSERT_TRUE(full_solution.has_value());
  ASSERT_TRUE(pruned_solution.has_value());
  EXPECT_NEAR(full_solution->objective, pruned_solution->objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningEquivalenceTest, ::testing::Range(0, 4));

// --- Misc edge cases ----------------------------------------------------------------

TEST(EdgeCaseTest, RngBoundOne) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextUint64(1), 0u);
}

TEST(EdgeCaseTest, CouplingDistanceSymmetric) {
  const CouplingMap grid = MakeGrid(3, 3);
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      EXPECT_EQ(grid.Distance(a, b), grid.Distance(b, a));
    }
  }
}

TEST(EdgeCaseTest, CompressWithEpsilonDropsTinyTerms) {
  QuboModel qubo(3);
  qubo.AddQuadratic(0, 1, 1e-13);
  qubo.AddQuadratic(1, 2, 0.5);
  qubo.Compress(1e-12);
  EXPECT_EQ(qubo.NumQuadraticTerms(), 1);
}

TEST(EdgeCaseTest, TwoRelationJoinOrderEncodes) {
  QueryGraph graph({10.0, 20.0});
  graph.AddPredicate(0, 1, 0.5);
  JoinOrderEncoderOptions options;
  options.thresholds = {10.0};
  options.safe_slack_bounds = true;
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  // One join only: no pao/cto variables survive the j = 0 pruning.
  EXPECT_EQ(encoding.num_logical, 4);  // tio/tii for 2 relations x 1 join
  const auto solution = SolveBilpBranchAndBound(encoding.bilp);
  ASSERT_TRUE(solution.has_value());
  std::vector<int> order;
  EXPECT_TRUE(DecodeJoinOrder(encoding, solution->bits, &order));
  EXPECT_TRUE(IsValidJoinOrder(graph, order));
}

TEST(EdgeCaseTest, MqoSingleQueryDegeneratesToMinCost) {
  MqoProblem problem;
  problem.AddQuery({5.0, 3.0, 9.0});
  const MqoQuboEncoding encoding = EncodeMqoAsQubo(problem);
  const BruteForceResult ground = SolveQuboBruteForce(encoding.qubo);
  std::vector<int> selection;
  ASSERT_TRUE(problem.DecodeBits(ground.best_bits, &selection));
  EXPECT_EQ(selection, (std::vector<int>{1}));
}

TEST(EdgeCaseTest, EmbeddingCompositeHandlesIsolatedVariables) {
  // A QUBO whose interaction graph has isolated vertices (pure linear
  // variables) must still solve through an embedding.
  QuboModel qubo(5);
  qubo.AddLinear(0, -1.0);
  qubo.AddLinear(4, 2.0);
  qubo.AddQuadratic(1, 2, -1.5);
  EmbeddedSolveOptions options;
  options.anneal.num_reads = 10;
  options.anneal.seed = 2;
  options.embed.seed = 2;
  const auto result =
      SolveQuboOnTopology(qubo, MakeChimera(2, 2, 4), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->energy, SolveQuboBruteForce(qubo).best_energy, 1e-9);
}

TEST(EdgeCaseTest, StatevectorSingleQubitDevice) {
  QuantumCircuit c(1);
  c.Sx(0);
  c.Sx(0);
  // Two SX = X up to phase: probability of |1> is 1.
  const auto probs = SimulateCircuit(c).Probabilities();
  EXPECT_NEAR(probs[1], 1.0, 1e-12);
}

// --- Graceful degradation of the optimizer facade ---------------------------------

/// MQO instance whose QUBO interaction graph is a complete graph on
/// `queries * plans_per_query` vertices: one-hot penalties couple plans
/// within a query, dense cross-query savings couple everything else.
MqoProblem MakeDenseMqo(int queries, int plans_per_query) {
  MqoProblem problem;
  for (int q = 0; q < queries; ++q) {
    std::vector<double> costs;
    for (int p = 0; p < plans_per_query; ++p) {
      costs.push_back(5.0 + q + 0.25 * p);
    }
    problem.AddQuery(costs);
  }
  for (int p1 = 0; p1 < problem.NumPlans(); ++p1) {
    for (int p2 = p1 + 1; p2 < problem.NumPlans(); ++p2) {
      if (problem.QueryOfPlan(p1) != problem.QueryOfPlan(p2)) {
        problem.AddSaving(p1, p2, 0.3);
      }
    }
  }
  return problem;
}

TEST(DegradationTest, AnnealerEmbeddingFailureFallsBackToExactOptimum) {
  // A K20 interaction graph cannot be minor-embedded into a Pegasus P2
  // fabric (40 qubits, largest clique minor ~K14), so the annealer
  // emulation must fail recoverably and the facade fall back to the
  // exact classical solver (20 qubits is within its budget).
  const MqoProblem problem = MakeDenseMqo(5, 4);
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 2;
  options.seed = 5;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kExact);
  EXPECT_FALSE(report->degradation_reason.empty());
  ASSERT_TRUE(report->valid);

  OptimizerOptions oracle_options;
  oracle_options.backend = Backend::kExact;
  const auto oracle = TrySolveMqo(problem, oracle_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(oracle->degraded);
  EXPECT_NEAR(report->solution.cost, oracle->solution.cost, 1e-9);
}

TEST(DegradationTest, AdiabaticBudgetOverflowFallsBackToAnnealing) {
  // 24 variables exceed the 20-qubit adiabatic simulation budget; the
  // problem is also too large for the exact fallback, so simulated
  // annealing stands in.
  const MqoProblem problem = MakeDenseMqo(6, 4);
  OptimizerOptions options;
  options.backend = Backend::kAdiabatic;
  options.anneal.num_reads = 30;
  options.anneal.num_sweeps = 2000;
  options.seed = 3;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_TRUE(report->valid);
}

TEST(DegradationTest, NoFallbackSurfacesBackendError) {
  const MqoProblem problem = MakeDenseMqo(5, 4);
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 2;
  options.classical_fallback = false;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(report.status().message().empty());
}

TEST(DegradationTest, InvalidOptionsAreNeverMaskedByFallback) {
  // Bad caller input (pegasus_m = 1 is not a valid fabric) must be
  // reported, not silently papered over by the classical fallback.
  const MqoProblem problem = MakeDenseMqo(2, 2);
  OptimizerOptions options;
  options.backend = Backend::kAnnealerEmulation;
  options.pegasus_m = 1;
  const auto report = TrySolveMqo(problem, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(DegradationTest, JoinOrderDegradesLikeMqo) {
  QueryGeneratorOptions gen;
  gen.num_relations = 4;
  gen.num_predicates = 4;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 1000.0;
  gen.selectivity_min = 0.1;
  gen.seed = 2;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 1000.0};
  encoder.safe_slack_bounds = true;
  // Self-check: the instance must actually exceed the adiabatic budget
  // for the degradation below to be exercised.
  const auto encoding = TryEncodeJoinOrderAsBilp(graph, encoder);
  ASSERT_TRUE(encoding.ok()) << encoding.status().ToString();
  ASSERT_GT(EncodeBilpAsQubo(encoding->bilp).qubo.NumVariables(), 20);

  OptimizerOptions options;
  options.backend = Backend::kAdiabatic;
  options.anneal.num_reads = 30;
  options.anneal.num_sweeps = 3000;
  options.seed = 4;
  const auto report = TrySolveJoinOrder(graph, encoder, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->backend_used, Backend::kSimulatedAnnealing);
  EXPECT_FALSE(report->degradation_reason.empty());
}

TEST(EdgeCaseTest, QaoaOnFieldOnlyHamiltonian) {
  // No couplings at all: QAOA still runs and the circuit has no RZZ.
  IsingModel ising(3);
  ising.AddField(0, 1.0);
  ising.AddField(1, -2.0);
  ising.AddField(2, 0.5);
  const QuantumCircuit circuit = BuildQaoaTemplate(ising);
  EXPECT_EQ(circuit.CountOps().count("rzz"), 0u);
  EXPECT_EQ(circuit.CountOps().at("rz"), 3);
}

}  // namespace
}  // namespace qopt
