// Tests for the observability layer (src/obs): metrics aggregation and
// export, span tracing and aggregation, cross-thread span parenting, and
// the headline determinism contract — a traced MQO solve produces
// byte-identical stable metrics and span trees at 1 and 8 threads.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "core/quantum_optimizer.h"
#include "mqo/mqo_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qopt {
namespace {

using obs::Metrics;
using obs::Tracer;

/// Every test starts and ends with both singletons disarmed and empty so
/// ordering within the binary cannot leak state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics::Instance().Reset();
    Tracer::Instance().Reset();
  }
  void TearDown() override {
    Metrics::Instance().Reset();
    Tracer::Instance().Reset();
  }
};

const Metrics::Row* FindRow(const std::vector<Metrics::Row>& rows,
                            const std::string& name) {
  for (const Metrics::Row& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisarmedMacrosRecordNothing) {
  ASSERT_FALSE(Metrics::Armed());
  QQO_COUNT("test.counter", 5);
  QQO_OBSERVE("test.histogram", 7);
  QQO_GAUGE_MAX("test.gauge", 9);
  EXPECT_TRUE(Metrics::Instance().Snapshot(true).empty());
}

TEST_F(ObsTest, CounterGaugeAndHistogramAggregate) {
  Metrics::Instance().Enable();
  QQO_COUNT("test.counter", 2);
  QQO_COUNT("test.counter", 3);
  QQO_GAUGE_MAX("test.gauge", 4);
  QQO_GAUGE_MAX("test.gauge", 9);
  QQO_GAUGE_MAX("test.gauge", 6);
  QQO_OBSERVE("test.histogram", 1);
  QQO_OBSERVE("test.histogram", 100);
  Metrics::Instance().Disable();

  const std::vector<Metrics::Row> rows = Metrics::Instance().Snapshot(false);
  const Metrics::Row* counter = FindRow(rows, "test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, Metrics::Kind::kCounter);
  EXPECT_EQ(counter->count, 2);
  EXPECT_EQ(counter->sum, 5);

  const Metrics::Row* gauge = FindRow(rows, "test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, Metrics::Kind::kGauge);
  EXPECT_EQ(gauge->sum, 9);  // max, order-independent

  const Metrics::Row* hist = FindRow(rows, "test.histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, Metrics::Kind::kHistogram);
  EXPECT_EQ(hist->count, 2);
  EXPECT_EQ(hist->sum, 101);
  EXPECT_EQ(hist->min, 1);
  EXPECT_EQ(hist->max, 100);
  long long bucketed = 0;
  for (long long b : hist->buckets) bucketed += b;
  EXPECT_EQ(bucketed, 2);
}

TEST_F(ObsTest, EnablePreRegistersStableCatalog) {
  Metrics::Instance().Enable();
  const std::vector<Metrics::Row> rows = Metrics::Instance().Snapshot(false);
  for (const char* name :
       {"anneal.sweeps", "embed.attempts", "fault.fires", "solve.attempts",
        "statevector.gates", "transpile.routing_seeds",
        "variational.iterations"}) {
    const Metrics::Row* row = FindRow(rows, name);
    ASSERT_NE(row, nullptr) << name;
    EXPECT_EQ(row->count, 0) << name;
  }
}

TEST_F(ObsTest, SchedulingMetricsExcludedFromStableSnapshot) {
  EXPECT_TRUE(Metrics::IsSchedulingMetric("threadpool.queue_depth"));
  // Race-lane bookkeeping (cancelled lanes, wait polls) stops at
  // timing-dependent points, so the whole race.* family is scheduling
  // class, like threadpool.*.
  EXPECT_TRUE(Metrics::IsSchedulingMetric("race.wait_polls"));
  EXPECT_TRUE(Metrics::IsSchedulingMetric("race.cancelled_lanes"));
  EXPECT_FALSE(Metrics::IsSchedulingMetric("anneal.sweeps"));
  Metrics::Instance().Enable();
  QQO_GAUGE_MAX("threadpool.queue_depth", 3);
  QQO_COUNT("race.wait_polls", 2);
  EXPECT_EQ(FindRow(Metrics::Instance().Snapshot(false),
                    "threadpool.queue_depth"),
            nullptr);
  EXPECT_EQ(FindRow(Metrics::Instance().Snapshot(false), "race.wait_polls"),
            nullptr);
  const Metrics::Row* row = FindRow(Metrics::Instance().Snapshot(true),
                                    "threadpool.queue_depth");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->scheduling);
  EXPECT_EQ(row->sum, 3);
  const Metrics::Row* race_row =
      FindRow(Metrics::Instance().Snapshot(true), "race.wait_polls");
  ASSERT_NE(race_row, nullptr);
  EXPECT_TRUE(race_row->scheduling);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  Metrics::Instance().Enable();
  QQO_COUNT("test.counter", 5);
  QQO_OBSERVE("test.histogram", 12);
  Metrics::Instance().Disable();

  const std::string dumped = Metrics::Instance().ToJson(true).Dump(2);
  std::string error;
  const std::optional<JsonValue> parsed = JsonValue::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Re-serializing the parsed document reproduces the export exactly.
  EXPECT_EQ(parsed->Dump(2), dumped);

  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->IsArray());
  bool saw_histogram = false;
  for (std::size_t i = 0; i < metrics->Size(); ++i) {
    const JsonValue& entry = metrics->At(i);
    ASSERT_TRUE(entry.Has("name"));
    ASSERT_TRUE(entry.Has("kind"));
    ASSERT_TRUE(entry.Has("count"));
    ASSERT_TRUE(entry.Has("sum"));
    if (entry.Find("name")->AsString() == "test.histogram") {
      saw_histogram = true;
      EXPECT_EQ(entry.Find("kind")->AsString(), "histogram");
      EXPECT_EQ(entry.Find("min")->AsInt(), 12);
      EXPECT_EQ(entry.Find("max")->AsInt(), 12);
      EXPECT_EQ(entry.Find("buckets")->Size(),
                static_cast<std::size_t>(Metrics::kNumBuckets));
    }
  }
  EXPECT_TRUE(saw_histogram);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TracerAggregatesNestedSpans) {
  Tracer::Instance().Enable();
  for (int i = 0; i < 2; ++i) {
    QQO_TRACE_SPAN("outer");
    QQO_TRACE_SPAN("inner");
  }
  {
    QQO_TRACE_SPAN("outer");
  }
  Tracer::Instance().Disable();

  const std::string tree = Tracer::Instance().AggregatedTreeString(false);
  EXPECT_NE(tree.find("outer/inner"), std::string::npos) << tree;
  // 3 "outer" spans total, 2 with a nested "inner".
  EXPECT_NE(tree.find("3"), std::string::npos) << tree;
  EXPECT_NE(tree.find("2"), std::string::npos) << tree;
}

TEST_F(ObsTest, DisarmedSpansRecordNothing) {
  ASSERT_FALSE(Tracer::Armed());
  {
    QQO_TRACE_SPAN("ghost");
  }
  Tracer::Instance().Enable();
  Tracer::Instance().Disable();
  const JsonValue trace = Tracer::Instance().ChromeTraceJson();
  ASSERT_TRUE(trace.Find("traceEvents")->IsArray());
  EXPECT_EQ(trace.Find("traceEvents")->Size(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonHasCompleteEvents) {
  Tracer::Instance().Enable();
  {
    QQO_TRACE_SPAN("parent");
    QQO_TRACE_SPAN("child");
  }
  Tracer::Instance().Disable();

  const std::string dumped = Tracer::Instance().ChromeTraceJson().Dump(1);
  std::string error;
  const std::optional<JsonValue> parsed = JsonValue::Parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->Size(), 2u);
  bool saw_child = false;
  for (std::size_t i = 0; i < events->Size(); ++i) {
    const JsonValue& event = events->At(i);
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_GE(event.Find("ts")->AsNumber(), 0.0);
    EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
    EXPECT_EQ(event.Find("pid")->AsInt(), 1);
    ASSERT_TRUE(event.Has("tid"));
    ASSERT_TRUE(event.Has("name"));
    if (event.Find("name")->AsString() == "child") {
      saw_child = true;
      EXPECT_EQ(event.Find("args")->Find("path")->AsString(),
                "parent/child");
    }
  }
  EXPECT_TRUE(saw_child);
}

TEST_F(ObsTest, WorkerSpansParentUnderSubmittingSpan) {
  Tracer::Instance().Enable();
  ThreadPool pool(4);
  {
    QQO_TRACE_SPAN("submit");
    pool.ParallelFor(16, [](std::size_t) {
      QQO_TRACE_SPAN("work");
    });
  }
  Tracer::Instance().Disable();

  const std::string tree = Tracer::Instance().AggregatedTreeString(false);
  // All 16 worker-side spans nest under the submitting span, none detach
  // to a root-level "work" row.
  EXPECT_NE(tree.find("submit/work"), std::string::npos) << tree;
  EXPECT_NE(tree.find("16"), std::string::npos) << tree;
  EXPECT_EQ(tree.find("\nwork"), std::string::npos) << tree;
}

// ---------------------------------------------------------------------------
// Golden determinism: traced solve at 1 thread == at 8 threads
// ---------------------------------------------------------------------------

/// One traced + metered MQO solve; returns (stable metrics table,
/// duration-free span tree) for byte comparison.
std::pair<std::string, std::string> TracedSolve(const MqoProblem& problem,
                                                const OptimizerOptions& options) {
  Metrics::Instance().Reset();
  Tracer::Instance().Reset();
  Metrics::Instance().Enable();
  Tracer::Instance().Enable();
  const MqoSolveReport report = SolveMqo(problem, options);
  Metrics::Instance().Disable();
  Tracer::Instance().Disable();
  EXPECT_TRUE(report.valid);
  return {Metrics::Instance().TableString(false),
          Tracer::Instance().AggregatedTreeString(false)};
}

TEST_F(ObsTest, TracedMqoSolveIsByteIdenticalAcrossThreadCounts) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;
  gen.seed = 11;
  const MqoProblem problem = GenerateMqoProblem(gen);
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 8;
  options.anneal.num_sweeps = 100;
  options.seed = 7;

  ThreadPool serial(1);
  ThreadPool parallel(8);
  std::pair<std::string, std::string> at_one;
  std::pair<std::string, std::string> at_eight;
  {
    ScopedDefaultPool guard(&serial);
    at_one = TracedSolve(problem, options);
  }
  {
    ScopedDefaultPool guard(&parallel);
    at_eight = TracedSolve(problem, options);
  }
  EXPECT_EQ(at_one.first, at_eight.first);    // stable metrics table
  EXPECT_EQ(at_one.second, at_eight.second);  // aggregated span tree

  // The tables are not trivially empty: the annealer actually counted.
  EXPECT_NE(at_one.first.find("anneal.sweeps"), std::string::npos);
  EXPECT_NE(at_one.second.find("solve.dispatch"), std::string::npos);
}

TEST_F(ObsTest, QaoaSolveCoversAcceptanceMetrics) {
  MqoGeneratorOptions gen;
  gen.num_queries = 2;
  gen.plans_per_query = 2;  // 4 qubits: statevector stays tiny
  gen.seed = 3;
  const MqoProblem problem = GenerateMqoProblem(gen);
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.seed = 5;

  Metrics::Instance().Enable();
  Tracer::Instance().Enable();
  const MqoSolveReport report = SolveMqo(problem, options);
  Metrics::Instance().Disable();
  Tracer::Instance().Disable();
  ASSERT_TRUE(report.valid);
  EXPECT_GE(report.stats.attempts, 1);
  EXPECT_GE(report.stats.elapsed_ms, 0.0);

  const std::vector<Metrics::Row> rows = Metrics::Instance().Snapshot(false);
  const Metrics::Row* attempts = FindRow(rows, "solve.attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_GE(attempts->sum, 1);
  const Metrics::Row* iterations = FindRow(rows, "variational.iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_GT(iterations->sum, 0);
  const Metrics::Row* gates = FindRow(rows, "statevector.gates");
  ASSERT_NE(gates, nullptr);
  EXPECT_GT(gates->sum, 0);
}

}  // namespace
}  // namespace qopt
