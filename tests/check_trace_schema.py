#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out.

Checks the schema contract documented in DESIGN.md ("Observability"):
the document is an object with a non-empty `traceEvents` array of
complete events (ph == "X"), each carrying name/ts/dur/pid/tid, with
non-negative microsecond timestamps and the span path under args.path.

Usage: check_trace_schema.py TRACE_FILE [--require-span PATH]...
Exit code 0 on a valid trace, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace_schema: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="PATH",
        help="fail unless an event with this args.path is present "
        "(repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace_file, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot read {args.trace_file}: {err}")

    if not isinstance(doc, dict):
        return fail("top-level value is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("traceEvents is missing or not an array")
    if not events:
        return fail("traceEvents is empty (no spans recorded?)")
    if doc.get("displayTimeUnit") not in (None, "ms", "ns"):
        return fail(f"bad displayTimeUnit {doc.get('displayTimeUnit')!r}")

    seen_paths = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        if ev.get("ph") != "X":
            return fail(f"{where}: ph is {ev.get('ph')!r}, expected 'X' "
                        "(complete events only)")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                return fail(f"{where}: missing key {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            return fail(f"{where}: name must be a non-empty string")
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                return fail(f"{where}: {key} must be a non-negative number, "
                            f"got {ev[key]!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], (int, float)):
                return fail(f"{where}: {key} must be a number")
        path = ev.get("args", {}).get("path")
        if not isinstance(path, str) or not path:
            return fail(f"{where}: args.path must be a non-empty string")
        if not path.endswith(ev["name"]):
            return fail(f"{where}: args.path {path!r} does not end with "
                        f"name {ev['name']!r}")
        seen_paths.add(path)

    missing = [p for p in args.require_span if p not in seen_paths]
    if missing:
        return fail(f"required span paths not found: {missing}; "
                    f"saw {sorted(seen_paths)}")

    print(f"check_trace_schema: ok: {len(events)} complete events, "
          f"{len(seen_paths)} distinct span paths")
    return 0


if __name__ == "__main__":
    sys.exit(main())
