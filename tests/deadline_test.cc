#include "common/deadline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "common/retry.h"
#include "common/status.h"

namespace qopt {
namespace {

TEST(DeadlineTest, DefaultIsUnboundedAndAlwaysOk) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.unbounded());
  EXPECT_EQ(deadline.token(), nullptr);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(deadline.Cancelled());
  EXPECT_TRUE(deadline.Check().ok());
  EXPECT_EQ(deadline.RemainingMillis(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ZeroBudgetIsImmediatelyExpired) {
  const Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, NegativeBudgetClampsToZero) {
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
}

TEST(DeadlineTest, FutureDeadlineIsOkUntilItPasses) {
  const Deadline deadline = Deadline::AfterMillis(1e7);
  EXPECT_FALSE(deadline.unbounded());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check().ok());
  EXPECT_GT(deadline.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, ShortDeadlineActuallyExpires) {
  const Deadline deadline = Deadline::AfterMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, WithBudgetTakesTheEarlierInstant) {
  const Deadline loose = Deadline::AfterMillis(1e7);
  const Deadline clamped = loose.WithBudgetMillis(1e3);
  EXPECT_LT(clamped.when(), loose.when());
  // Clamping cannot extend an already-tight deadline.
  const Deadline tight = Deadline::AfterMillis(1);
  const Deadline not_extended = tight.WithBudgetMillis(1e7);
  EXPECT_EQ(not_extended.when(), tight.when());
}

TEST(DeadlineTest, WithBudgetBoundsAnUnboundedDeadline) {
  const Deadline bounded = Deadline().WithBudgetMillis(50);
  EXPECT_FALSE(bounded.unbounded());
  EXPECT_LE(bounded.RemainingMillis(), 50.0);
}

TEST(DeadlineTest, WithBudgetKeepsTheToken) {
  CancelToken token;
  const Deadline deadline =
      Deadline::AfterMillis(1e7).WithToken(&token).WithBudgetMillis(1e3);
  EXPECT_EQ(deadline.token(), &token);
}

TEST(CancelTokenTest, CancellationWinsOverExpiry) {
  CancelToken token;
  token.Cancel();
  // Both tripped: the caller's explicit cancel is the more specific verdict.
  const Deadline deadline = Deadline::AfterMillis(0).WithToken(&token);
  EXPECT_EQ(deadline.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ResetReArmsTheToken) {
  CancelToken token;
  const Deadline deadline = Deadline().WithToken(&token);
  token.Cancel();
  EXPECT_EQ(deadline.Check().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_TRUE(deadline.Check().ok());
}

TEST(CancelTokenTest, LinkedTokenObservesTheParent) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  // The parent's cancel is visible through the child with no forwarding.
  EXPECT_TRUE(child.cancelled());
  const Deadline deadline = Deadline().WithToken(&child);
  EXPECT_EQ(deadline.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, LinkedTokenCancelDoesNotPropagateUpward) {
  CancelToken parent;
  CancelToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
  // Reset re-arms only the child's own flag; a fired parent still shows
  // through afterwards.
  child.Reset();
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double first = watch.ElapsedMillis();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double second = watch.ElapsedMillis();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), second);
}

TEST(RetryPolicyTest, BackoffGrowsGeometricallyWithinJitterBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 1e6;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double nominal = 100.0 * std::pow(2.0, attempt - 1);
    const double wait = BackoffMillis(policy, attempt);
    EXPECT_GE(wait, 0.5 * nominal) << "attempt " << attempt;
    EXPECT_LE(wait, nominal) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, BackoffIsDeterministicPerSeedAndAttempt) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 50.0;
  policy.seed = 7;
  EXPECT_EQ(BackoffMillis(policy, 3), BackoffMillis(policy, 3));
  RetryPolicy other = policy;
  other.seed = 8;
  // Different jitter streams (equality would defeat the seeding).
  EXPECT_NE(BackoffMillis(policy, 3), BackoffMillis(other, 3));
}

TEST(RetryPolicyTest, BackoffIsCappedAtMax) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_ms = 250.0;
  EXPECT_LE(BackoffMillis(policy, 10), 250.0);
}

TEST(RetryPolicyTest, ZeroInitialBackoffRetriesImmediately) {
  RetryPolicy policy;  // initial_backoff_ms = 0
  EXPECT_EQ(BackoffMillis(policy, 1), 0.0);
  EXPECT_EQ(BackoffMillis(policy, 4), 0.0);
}

TEST(RetryPolicyTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kUnavailable));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInternal));
}

TEST(RetryPolicyTest, SleepWithDeadlineHonorsTheBudget) {
  // A sleep far longer than the deadline must bail out early and say so.
  const Deadline deadline = Deadline::AfterMillis(5);
  Stopwatch watch;
  EXPECT_FALSE(SleepWithDeadline(10000.0, deadline));
  EXPECT_LT(watch.ElapsedMillis(), 1000.0);
}

TEST(RetryPolicyTest, SleepWithDeadlineObservesCancellation) {
  CancelToken token;
  token.Cancel();
  EXPECT_FALSE(SleepWithDeadline(10000.0, Deadline().WithToken(&token)));
}

TEST(RetryPolicyTest, SleepCompletesUnderALooseDeadline) {
  EXPECT_TRUE(SleepWithDeadline(1.0, Deadline::AfterMillis(1e7)));
  EXPECT_TRUE(SleepWithDeadline(0.0, Deadline()));
}

}  // namespace
}  // namespace qopt
