#include <gtest/gtest.h>

#include <cmath>

#include "circuit/statevector.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "variational/optimizers.h"
#include "variational/qaoa.h"
#include "variational/variational_solver.h"
#include "variational/vqe_ansatz.h"

namespace qopt {
namespace {

/// Max-cut on a triangle as an Ising model: H = s0 s1 + s1 s2 + s0 s2.
/// Ground energy -1 (any 2-1 split).
IsingModel TriangleIsing() {
  IsingModel ising(3);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddCoupling(1, 2, 1.0);
  ising.AddCoupling(0, 2, 1.0);
  return ising;
}

// --- QAOA circuit structure -------------------------------------------------

TEST(QaoaCircuitTest, GateCountsMatchHamiltonian) {
  IsingModel ising(4);
  ising.AddField(0, 1.0);
  ising.AddField(2, -0.5);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddCoupling(2, 3, 1.0);
  ising.AddCoupling(0, 3, 1.0);
  const QuantumCircuit c = BuildQaoaCircuit(ising, {0.3}, {0.2});
  const auto counts = c.CountOps();
  EXPECT_EQ(counts.at("h"), 4);     // initial superposition
  EXPECT_EQ(counts.at("rzz"), 3);   // one per coupling
  EXPECT_EQ(counts.at("rz"), 2);    // one per non-zero field
  EXPECT_EQ(counts.at("rx"), 4);    // mixer
}

TEST(QaoaCircuitTest, RepetitionsScaleGateCount) {
  const IsingModel ising = TriangleIsing();
  const QuantumCircuit p1 = BuildQaoaTemplate(ising, 1);
  const QuantumCircuit p3 = BuildQaoaTemplate(ising, 3);
  EXPECT_EQ(p3.CountOps().at("rzz"), 3 * p1.CountOps().at("rzz"));
  EXPECT_GT(p3.Depth(), p1.Depth());
}

TEST(QaoaCircuitTest, DenserHamiltonianDeeperCircuit) {
  IsingModel sparse(6);
  for (int i = 0; i + 1 < 6; ++i) sparse.AddCoupling(i, i + 1, 1.0);
  IsingModel dense(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) dense.AddCoupling(i, j, 1.0);
  }
  EXPECT_GT(BuildQaoaTemplate(dense).Depth(),
            BuildQaoaTemplate(sparse).Depth());
}

TEST(QaoaCircuitTest, ZeroAngleCircuitIsUniformSuperposition) {
  const IsingModel ising = TriangleIsing();
  const QuantumCircuit c = BuildQaoaCircuit(ising, {0.0}, {0.0});
  const auto probs = SimulateCircuit(c).Probabilities();
  for (double p : probs) EXPECT_NEAR(p, 1.0 / 8.0, 1e-9);
}

// --- VQE ansatz ---------------------------------------------------------------

TEST(VqeAnsatzTest, ParameterCount) {
  EXPECT_EQ(RealAmplitudesNumParameters(5, 3), 20);
  EXPECT_EQ(RealAmplitudesNumParameters(1, 0), 1);
}

TEST(VqeAnsatzTest, FullEntanglementGateCount) {
  const QuantumCircuit c = BuildVqeTemplate(4, 2);
  const auto counts = c.CountOps();
  EXPECT_EQ(counts.at("ry"), 12);      // (reps+1) * n
  EXPECT_EQ(counts.at("cx"), 2 * 6);   // reps * n(n-1)/2
}

TEST(VqeAnsatzTest, LinearEntanglementShallowerThanFull) {
  const QuantumCircuit full = BuildVqeTemplate(8, 3, Entanglement::kFull);
  const QuantumCircuit linear = BuildVqeTemplate(8, 3, Entanglement::kLinear);
  EXPECT_GT(full.Depth(), linear.Depth());
}

TEST(VqeAnsatzTest, DepthIndependentOfProblem) {
  // VQE depth depends only on qubit count (Sec. 5.3.2).
  const QuantumCircuit a = BuildVqeTemplate(6, 3);
  const QuantumCircuit b = BuildVqeTemplate(6, 3);
  EXPECT_EQ(a.Depth(), b.Depth());
}

TEST(VqeAnsatzTest, ZeroAnglesPreserveZeroState) {
  const std::vector<double> thetas(RealAmplitudesNumParameters(3, 2), 0.0);
  const QuantumCircuit c = BuildRealAmplitudes(3, 2, thetas);
  const auto probs = SimulateCircuit(c).Probabilities();
  EXPECT_NEAR(probs[0], 1.0, 1e-9);
}

// --- Classical optimizers -----------------------------------------------------

TEST(NelderMeadTest, MinimizesQuadraticBowl) {
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0) + 3.0;
  };
  const OptimizeResult result = MinimizeNelderMead(f, {0.0, 0.0}, 500, 1e-10);
  EXPECT_NEAR(result.fval, 3.0, 1e-4);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], -2.0, 1e-2);
}

TEST(NelderMeadTest, MinimizesRosenbrockReasonably) {
  const Objective f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const OptimizeResult result = MinimizeNelderMead(f, {-1.2, 1.0}, 2000, 1e-12);
  EXPECT_LT(result.fval, 1e-3);
}

TEST(NelderMeadTest, ReportsEvaluations) {
  const Objective f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  const OptimizeResult result = MinimizeNelderMead(f, {5.0}, 100);
  EXPECT_GT(result.evaluations, 2);
}

TEST(AdamTest, MinimizesQuadraticBowl) {
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const OptimizeResult result = MinimizeAdam(f, {0.0, 0.0}, 150);
  EXPECT_NEAR(result.fval, 0.0, 1e-2);
  EXPECT_NEAR(result.x[0], 1.0, 0.2);
  EXPECT_NEAR(result.x[1], -2.0, 0.2);
}

TEST(AdamTest, GradientEvaluationCountPerIteration) {
  int evaluations = 0;
  const Objective f = [&evaluations](const std::vector<double>& x) {
    ++evaluations;
    return x[0] * x[0];
  };
  const OptimizeResult result = MinimizeAdam(f, {3.0}, 10);
  // 1 initial + per iteration (2 gradient probes + 1 step evaluation).
  EXPECT_EQ(result.evaluations, 1 + 10 * 3);
  EXPECT_EQ(evaluations, result.evaluations);
}

TEST(SpsaTest, MinimizesQuadratic) {
  const Objective f = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  const OptimizeResult result = MinimizeSpsa(f, {2.0, -3.0}, 500, 7);
  EXPECT_LT(result.fval, 0.5);
}

// --- End-to-end hybrid solves -------------------------------------------------

QuboModel SmallMqoLikeQubo() {
  // Two groups of two variables; exactly one per group should be 1.
  QuboModel qubo(4);
  const double wl = 10.0;
  const double wm = 25.0;
  for (int i = 0; i < 4; ++i) qubo.AddLinear(i, -wl);
  qubo.AddLinear(0, 3.0);
  qubo.AddLinear(1, 5.0);
  qubo.AddLinear(2, 2.0);
  qubo.AddLinear(3, 6.0);
  qubo.AddQuadratic(0, 1, wm);
  qubo.AddQuadratic(2, 3, wm);
  qubo.AddQuadratic(1, 2, -1.5);  // saving
  return qubo;
}

TEST(VariationalSolverTest, QaoaFindsGroundStateOfSmallQubo) {
  const QuboModel qubo = SmallMqoLikeQubo();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  VariationalOptions options;
  options.max_iterations = 200;
  options.shots = 2048;
  options.seed = 3;
  const VariationalResult result = SolveQuboWithQaoa(qubo, options);
  EXPECT_NEAR(result.best_energy, exact.best_energy, 1e-6);
}

TEST(VariationalSolverTest, VqeFindsGroundStateOfSmallQubo) {
  const QuboModel qubo = SmallMqoLikeQubo();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  VariationalOptions options;
  options.max_iterations = 400;
  options.shots = 2048;
  options.seed = 5;
  const VariationalResult result = SolveQuboWithVqe(qubo, options);
  EXPECT_NEAR(result.best_energy, exact.best_energy, 1e-6);
}

TEST(VariationalSolverTest, ExpectationIsUpperBoundOnGroundEnergy) {
  // The variational principle (Eq. 15).
  const QuboModel qubo = SmallMqoLikeQubo();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  VariationalOptions options;
  options.max_iterations = 50;
  const VariationalResult qaoa = SolveQuboWithQaoa(qubo, options);
  const VariationalResult vqe = SolveQuboWithVqe(qubo, options);
  EXPECT_GE(qaoa.expectation, exact.best_energy - 1e-9);
  EXPECT_GE(vqe.expectation, exact.best_energy - 1e-9);
}

TEST(VariationalSolverTest, QaoaOptimalCircuitHasBoundAngles) {
  const QuboModel qubo = SmallMqoLikeQubo();
  VariationalOptions options;
  options.max_iterations = 100;
  const VariationalResult result = SolveQuboWithQaoa(qubo, options);
  EXPECT_GT(result.optimal_circuit.NumGates(), 0);
  EXPECT_EQ(result.optimal_circuit.NumQubits(), 4);
  EXPECT_GT(result.evaluations, 0);
}

TEST(VariationalSolverTest, AdamBackendSolvesSmallQubo) {
  const QuboModel qubo = SmallMqoLikeQubo();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  VariationalOptions options;
  options.optimizer = OuterOptimizer::kAdam;
  options.max_iterations = 200;
  options.shots = 2048;
  options.seed = 13;
  const VariationalResult result = SolveQuboWithQaoa(qubo, options);
  EXPECT_NEAR(result.best_energy, exact.best_energy, 1e-6);
}

TEST(VariationalSolverTest, SpsaBackendAlsoSolves) {
  const QuboModel qubo = SmallMqoLikeQubo();
  const BruteForceResult exact = SolveQuboBruteForce(qubo);
  VariationalOptions options;
  options.optimizer = OuterOptimizer::kSpsa;
  options.max_iterations = 300;
  options.shots = 4096;
  options.seed = 11;
  const VariationalResult result = SolveQuboWithQaoa(qubo, options);
  // SPSA is noisier; accept near-optimal with sampling.
  EXPECT_LE(result.best_energy, exact.best_energy + 1.5);
}

}  // namespace
}  // namespace qopt
