#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "circuit/statevector.h"
#include "common/random.h"
#include "transpile/basis_decomposer.h"
#include "transpile/coupling_map.h"
#include "transpile/ibm_topologies.h"
#include "transpile/layout.h"
#include "transpile/swap_router.h"
#include "transpile/transpiler.h"

namespace qopt {
namespace {

constexpr double kPi = std::numbers::pi;

/// Fidelity |<a|b>|^2 between two statevectors — 1 iff equal up to a
/// global phase.
double Fidelity(const std::vector<std::complex<double>>& a,
                const std::vector<std::complex<double>>& b) {
  std::complex<double> inner = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) inner += std::conj(a[i]) * b[i];
  return std::norm(inner);
}

// --- Coupling maps ---------------------------------------------------------

TEST(CouplingMapTest, FullyConnectedProperties) {
  const CouplingMap full = MakeFullyConnected(5);
  EXPECT_TRUE(full.IsFullyConnected());
  EXPECT_EQ(full.Graph().NumEdges(), 10);
  EXPECT_EQ(full.Distance(0, 4), 1);
}

TEST(CouplingMapTest, LinearDistances) {
  const CouplingMap line = MakeLinear(6);
  EXPECT_FALSE(line.IsFullyConnected());
  EXPECT_EQ(line.Distance(0, 5), 5);
  EXPECT_EQ(line.Distance(2, 2), 0);
}

TEST(CouplingMapTest, GridStructure) {
  const CouplingMap grid = MakeGrid(3, 4);
  EXPECT_EQ(grid.NumQubits(), 12);
  // Edges: 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(grid.Graph().NumEdges(), 17);
  EXPECT_EQ(grid.Distance(0, 11), 5);
}

TEST(IbmTopologiesTest, MumbaiHasFalconShape) {
  const CouplingMap mumbai = MakeMumbai27();
  EXPECT_EQ(mumbai.NumQubits(), 27);
  EXPECT_EQ(mumbai.Graph().NumEdges(), 28);
  EXPECT_TRUE(mumbai.IsConnected());
  EXPECT_LE(mumbai.Graph().MaxDegree(), 3);  // heavy-hex property
}

TEST(IbmTopologiesTest, BrooklynHasHummingbirdShape) {
  const CouplingMap brooklyn = MakeBrooklyn65();
  EXPECT_EQ(brooklyn.NumQubits(), 65);
  EXPECT_EQ(brooklyn.Graph().NumEdges(), 72);
  EXPECT_TRUE(brooklyn.IsConnected());
  EXPECT_LE(brooklyn.Graph().MaxDegree(), 3);
  // Every qubit participates in the fabric.
  for (int q = 0; q < 65; ++q) EXPECT_GE(brooklyn.Graph().Degree(q), 1);
}

// --- Basis decomposition ----------------------------------------------------

struct GateCase {
  const char* name;
  void (*emit)(QuantumCircuit*, Rng*);
};

void EmitH(QuantumCircuit* c, Rng*) { c->H(0); }
void EmitX(QuantumCircuit* c, Rng*) { c->X(0); }
void EmitY(QuantumCircuit* c, Rng*) { c->Y(0); }
void EmitZ(QuantumCircuit* c, Rng*) { c->Z(0); }
void EmitSx(QuantumCircuit* c, Rng*) { c->Sx(0); }
void EmitRx(QuantumCircuit* c, Rng* r) { c->Rx(0, r->NextDouble(-kPi, kPi)); }
void EmitRy(QuantumCircuit* c, Rng* r) { c->Ry(0, r->NextDouble(-kPi, kPi)); }
void EmitRz(QuantumCircuit* c, Rng* r) { c->Rz(0, r->NextDouble(-kPi, kPi)); }
void EmitCx(QuantumCircuit* c, Rng*) { c->Cx(0, 1); }
void EmitCz(QuantumCircuit* c, Rng*) { c->Cz(0, 1); }
void EmitRzz(QuantumCircuit* c, Rng* r) { c->Rzz(0, 1, r->NextDouble(-kPi, kPi)); }
void EmitSwap(QuantumCircuit* c, Rng*) { c->Swap(0, 1); }

class BasisDecompositionTest : public ::testing::TestWithParam<GateCase> {};

TEST_P(BasisDecompositionTest, GateEquivalentUpToGlobalPhase) {
  Rng rng(2024);
  // A non-trivial two-qubit input state so phases matter.
  QuantumCircuit prep(2);
  prep.Ry(0, 0.7);
  prep.Ry(1, 1.9);
  prep.Cx(0, 1);
  prep.Rz(0, 0.3);

  QuantumCircuit original = prep;
  GetParam().emit(&original, &rng);
  Rng rng2(2024);
  QuantumCircuit gate_only(2);
  GetParam().emit(&gate_only, &rng2);
  QuantumCircuit decomposed = prep;
  decomposed.Extend(DecomposeToBasis(gate_only));

  const double fidelity = Fidelity(SimulateCircuit(original).Amplitudes(),
                                   SimulateCircuit(decomposed).Amplitudes());
  EXPECT_NEAR(fidelity, 1.0, 1e-9) << GetParam().name;

  // Decomposition uses only basis gates.
  const QuantumCircuit basis_circuit = DecomposeToBasis(gate_only);
  for (const Gate& g : basis_circuit.Gates()) {
    const bool basis = g.kind == GateKind::kRz || g.kind == GateKind::kSx ||
                       g.kind == GateKind::kX || g.kind == GateKind::kCx;
    EXPECT_TRUE(basis) << GateKindName(g.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, BasisDecompositionTest,
    ::testing::Values(GateCase{"h", EmitH}, GateCase{"x", EmitX},
                      GateCase{"y", EmitY}, GateCase{"z", EmitZ},
                      GateCase{"sx", EmitSx}, GateCase{"rx", EmitRx},
                      GateCase{"ry", EmitRy}, GateCase{"rz", EmitRz},
                      GateCase{"cx", EmitCx}, GateCase{"cz", EmitCz},
                      GateCase{"rzz", EmitRzz}, GateCase{"swap", EmitSwap}),
    [](const ::testing::TestParamInfo<GateCase>& param_info) {
      return param_info.param.name;
    });

TEST(MergeAdjacentRzTest, MergesRunsAndDropsZeros) {
  QuantumCircuit c(2);
  c.Rz(0, 0.5);
  c.Rz(0, 0.25);
  c.Rz(1, kPi);
  c.Rz(1, -kPi);
  c.H(0);
  const QuantumCircuit merged = MergeAdjacentRz(c);
  const auto counts = merged.CountOps();
  EXPECT_EQ(counts.at("rz"), 1);
  EXPECT_EQ(counts.at("h"), 1);
}

TEST(MergeAdjacentRzTest, PreservesSemantics) {
  Rng rng(5);
  QuantumCircuit c(3);
  for (int i = 0; i < 30; ++i) {
    const int q = rng.NextInt(0, 2);
    if (rng.NextBool(0.6)) {
      c.Rz(q, rng.NextDouble(-kPi, kPi));
    } else if (rng.NextBool()) {
      c.Sx(q);
    } else {
      c.Cx(q, (q + 1) % 3);
    }
  }
  const double fidelity =
      Fidelity(SimulateCircuit(c).Amplitudes(),
               SimulateCircuit(MergeAdjacentRz(c)).Amplitudes());
  EXPECT_NEAR(fidelity, 1.0, 1e-9);
}

// --- Layout -----------------------------------------------------------------

TEST(LayoutTest, TrivialLayoutIsIdentity) {
  EXPECT_EQ(TrivialLayout(4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(LayoutTest, DenseLayoutIsInjectiveAndInRange) {
  const CouplingMap mumbai = MakeMumbai27();
  const std::vector<int> layout = DenseLayout(mumbai, 10);
  ASSERT_EQ(layout.size(), 10u);
  std::vector<bool> used(27, false);
  for (int p : layout) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 27);
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
    used[static_cast<std::size_t>(p)] = true;
  }
}

TEST(LayoutTest, DenseLayoutSelectsConnectedRegion) {
  const CouplingMap brooklyn = MakeBrooklyn65();
  const std::vector<int> layout = DenseLayout(brooklyn, 20);
  std::vector<bool> removed(65, true);
  for (int p : layout) removed[static_cast<std::size_t>(p)] = false;
  EXPECT_TRUE(brooklyn.Graph().InducedSubgraph(removed).IsConnected());
}

// --- Routing ----------------------------------------------------------------

QuantumCircuit MakeRandomLogicalCircuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit c(n);
  for (int i = 0; i < gates; ++i) {
    if (rng.NextBool(0.4)) {
      c.Ry(rng.NextInt(0, n - 1), rng.NextDouble(-kPi, kPi));
    } else {
      int a = rng.NextInt(0, n - 1);
      int b = rng.NextInt(0, n - 1);
      while (b == a) b = rng.NextInt(0, n - 1);
      c.Cx(a, b);
    }
  }
  return c;
}

TEST(SwapRouterTest, RoutedGatesRespectCoupling) {
  const CouplingMap line = MakeLinear(6);
  const QuantumCircuit logical = MakeRandomLogicalCircuit(6, 40, 7);
  Rng rng(1);
  const RoutedCircuit routed =
      RouteCircuit(logical, line, TrivialLayout(6), &rng);
  for (const Gate& g : routed.circuit.Gates()) {
    if (g.NumQubits() == 2) {
      EXPECT_TRUE(line.AreCoupled(g.qubit0, g.qubit1));
    }
  }
}

TEST(SwapRouterTest, NoSwapsOnFullConnectivity) {
  const CouplingMap full = MakeFullyConnected(6);
  const QuantumCircuit logical = MakeRandomLogicalCircuit(6, 40, 11);
  Rng rng(1);
  const RoutedCircuit routed =
      RouteCircuit(logical, full, TrivialLayout(6), &rng);
  EXPECT_EQ(routed.circuit.CountOps().count("swap"), 0u);
  EXPECT_EQ(routed.circuit.NumGates(), logical.NumGates());
}

/// Semantic check: routing only permutes qubits, so simulating the routed
/// circuit and un-permuting via final_layout must reproduce the original
/// state (restricted to the first NumQubits logical qubits).
TEST(SwapRouterTest, RoutingPreservesSemantics) {
  const int n = 5;
  const CouplingMap line = MakeLinear(n);
  const QuantumCircuit logical = MakeRandomLogicalCircuit(n, 25, 13);
  Rng rng(99);
  const RoutedCircuit routed =
      RouteCircuit(logical, line, TrivialLayout(n), &rng);

  const auto expected = SimulateCircuit(logical).Amplitudes();
  const auto physical = SimulateCircuit(routed.circuit).Amplitudes();
  // Map physical basis index -> logical basis index via final_layout.
  std::vector<std::complex<double>> actual(expected.size(), 0.0);
  for (std::size_t p_index = 0; p_index < physical.size(); ++p_index) {
    std::size_t l_index = 0;
    for (int l = 0; l < n; ++l) {
      const int p = routed.final_layout[static_cast<std::size_t>(l)];
      if (p_index & (std::size_t{1} << p)) l_index |= std::size_t{1} << l;
    }
    actual[l_index] += physical[p_index];
  }
  EXPECT_NEAR(Fidelity(expected, actual), 1.0, 1e-9);
}

TEST(SwapRouterTest, DifferentSeedsCanDiffer) {
  const CouplingMap mumbai = MakeMumbai27();
  const QuantumCircuit logical = MakeRandomLogicalCircuit(12, 60, 17);
  std::vector<int> depths;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    depths.push_back(
        RouteCircuit(logical, mumbai, DenseLayout(mumbai, 12), &rng)
            .circuit.Depth());
  }
  // Stochastic routing should not be perfectly constant across 8 seeds.
  bool any_different = false;
  for (int d : depths) any_different |= d != depths[0];
  EXPECT_TRUE(any_different);
}

// --- Full pipeline ----------------------------------------------------------

TEST(TranspilerTest, FullMapKeepsDepthAndIsDeterministic) {
  const QuantumCircuit logical = MakeRandomLogicalCircuit(6, 30, 19);
  const CouplingMap full = MakeFullyConnected(6);
  TranspileOptions options_a;
  options_a.seed = 1;
  TranspileOptions options_b;
  options_b.seed = 2;
  const TranspileResult a = Transpile(logical, full, options_a);
  const TranspileResult b = Transpile(logical, full, options_b);
  EXPECT_EQ(a.depth, b.depth);
}

TEST(TranspilerTest, DeviceDepthAtLeastIdealDepth) {
  const QuantumCircuit logical = MakeRandomLogicalCircuit(10, 60, 23);
  const CouplingMap full = MakeFullyConnected(10);
  const CouplingMap mumbai = MakeMumbai27();
  const int ideal = Transpile(logical, full).depth;
  const Summary device = TranspiledDepthStats(logical, mumbai, 5);
  EXPECT_GE(device.min, ideal);
}

TEST(TranspilerTest, ResultUsesBasisGatesOnly) {
  const QuantumCircuit logical = MakeRandomLogicalCircuit(8, 30, 29);
  const CouplingMap mumbai = MakeMumbai27();
  const TranspileResult result = Transpile(logical, mumbai);
  for (const Gate& g : result.circuit.Gates()) {
    const bool basis = g.kind == GateKind::kRz || g.kind == GateKind::kSx ||
                       g.kind == GateKind::kX || g.kind == GateKind::kCx;
    EXPECT_TRUE(basis);
    if (g.NumQubits() == 2) {
      EXPECT_TRUE(mumbai.AreCoupled(g.qubit0, g.qubit1));
    }
  }
}

TEST(TranspilerTest, DepthStatsSampleCount) {
  const QuantumCircuit logical = MakeRandomLogicalCircuit(6, 20, 31);
  const CouplingMap mumbai = MakeMumbai27();
  EXPECT_EQ(TranspiledDepthStats(logical, mumbai, 7).count, 7u);
  const CouplingMap full = MakeFullyConnected(6);
  EXPECT_EQ(TranspiledDepthStats(logical, full, 7).count, 1u);
}

}  // namespace
}  // namespace qopt
