// Tests for the extension modules: randomized join ordering baselines,
// the MQO -> BILP encoding, OpenQASM export, the parameterized heavy-hex
// generator and circuit reliability estimation.
#include <gtest/gtest.h>

#include "bilp/bilp_branch_and_bound.h"
#include "bilp/bilp_to_qubo.h"
#include "circuit/qasm_exporter.h"
#include "core/device_model.h"
#include "core/reliability.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_order_randomized.h"
#include "mqo/mqo_baselines.h"
#include "mqo/mqo_bilp_encoder.h"
#include "mqo/mqo_generator.h"
#include "qubo/brute_force_solver.h"
#include "transpile/heavy_hex.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/vqe_ansatz.h"

namespace qopt {
namespace {

// --- Randomized join ordering -------------------------------------------------

class RandomizedJoinOrderTest : public ::testing::TestWithParam<int> {
 protected:
  QueryGraph MakeGraph() const {
    QueryGeneratorOptions gen;
    gen.num_relations = 8;
    gen.num_predicates = 10;
    gen.cardinality_min = 10.0;
    gen.cardinality_max = 100000.0;
    gen.selectivity_min = 0.0005;
    gen.selectivity_max = 0.5;
    gen.seed = GetParam();
    return GenerateRandomQuery(gen);
  }
};

TEST_P(RandomizedJoinOrderTest, IterativeImprovementValidAndNearOptimal) {
  const QueryGraph graph = MakeGraph();
  const JoinOrderSolution dp = SolveJoinOrderDp(graph);
  RandomizedJoinOrderOptions options;
  options.seed = GetParam() + 1;
  const JoinOrderSolution ii =
      SolveJoinOrderIterativeImprovement(graph, options);
  EXPECT_TRUE(IsValidJoinOrder(graph, ii.order));
  EXPECT_GE(ii.cost, dp.cost * (1.0 - 1e-12));
  // With 10 restarts on 8 relations II should come within 10x of optimal.
  EXPECT_LE(ii.cost, dp.cost * 10.0);
  EXPECT_NEAR(CoutCost(graph, ii.order), ii.cost, ii.cost * 1e-12);
}

TEST_P(RandomizedJoinOrderTest, SimulatedAnnealingValidAndNearOptimal) {
  const QueryGraph graph = MakeGraph();
  const JoinOrderSolution dp = SolveJoinOrderDp(graph);
  RandomizedJoinOrderOptions options;
  options.seed = GetParam() + 2;
  const JoinOrderSolution sa =
      SolveJoinOrderSimulatedAnnealing(graph, options);
  EXPECT_TRUE(IsValidJoinOrder(graph, sa.order));
  EXPECT_GE(sa.cost, dp.cost * (1.0 - 1e-12));
  EXPECT_LE(sa.cost, dp.cost * 10.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedJoinOrderTest,
                         ::testing::Range(0, 6));

TEST(RandomizedJoinOrderTest, FindsOptimumOnSmallQueries) {
  // On 5 relations the search space is 120 orders; both randomized
  // algorithms should find the optimum.
  QueryGeneratorOptions gen;
  gen.num_relations = 5;
  gen.num_predicates = 6;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 10000.0;
  gen.selectivity_min = 0.001;
  gen.seed = 3;
  const QueryGraph graph = GenerateRandomQuery(gen);
  const JoinOrderSolution exact = SolveJoinOrderExhaustive(graph);
  RandomizedJoinOrderOptions options;
  options.seed = 4;
  EXPECT_NEAR(SolveJoinOrderIterativeImprovement(graph, options).cost,
              exact.cost, exact.cost * 1e-9);
  EXPECT_NEAR(SolveJoinOrderSimulatedAnnealing(graph, options).cost,
              exact.cost, exact.cost * 1e-9);
}

// --- MQO via BILP ----------------------------------------------------------------

TEST(MqoBilpTest, BranchAndBoundMatchesExhaustiveOnPaperExample) {
  const MqoProblem example = MakePaperExampleMqo();
  const MqoBilpEncoding encoding = EncodeMqoAsBilp(example);
  const auto solution = SolveBilpBranchAndBound(encoding.bilp);
  ASSERT_TRUE(solution.has_value());
  // BILP objective = MQO cost + sum of savings.
  EXPECT_NEAR(solution->objective - encoding.objective_offset, 21.0, 1e-9);
  std::vector<int> selection;
  ASSERT_TRUE(DecodeMqoBilp(encoding, example, solution->bits, &selection));
  EXPECT_NEAR(example.SelectionCost(selection), 21.0, 1e-9);
}

class MqoBilpParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MqoBilpParamTest, BnbMatchesExhaustiveOnRandomInstances) {
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 3;
  gen.saving_density = 0.3;
  gen.seed = GetParam() + 500;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoSolution exact = SolveMqoExhaustive(problem);
  const MqoBilpEncoding encoding = EncodeMqoAsBilp(problem);
  const auto solution = SolveBilpBranchAndBound(encoding.bilp);
  ASSERT_TRUE(solution.has_value());
  std::vector<int> selection;
  ASSERT_TRUE(DecodeMqoBilp(encoding, problem, solution->bits, &selection));
  EXPECT_NEAR(problem.SelectionCost(selection), exact.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MqoBilpParamTest,
                         ::testing::Range(0, 6));

TEST(MqoBilpTest, QuboGroundStateDecodesOptimum) {
  MqoGeneratorOptions gen;
  gen.num_queries = 2;
  gen.plans_per_query = 2;
  gen.saving_density = 0.5;
  gen.seed = 9;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const MqoBilpEncoding encoding = EncodeMqoAsBilp(problem);
  ASSERT_LE(encoding.bilp.NumVariables(), 26);
  const BilpQuboEncoding qubo = EncodeBilpAsQubo(encoding.bilp);
  const BruteForceResult ground = SolveQuboBruteForce(qubo.qubo);
  EXPECT_TRUE(encoding.bilp.IsFeasible(ground.best_bits));
  std::vector<int> selection;
  ASSERT_TRUE(DecodeMqoBilp(encoding, problem, ground.best_bits, &selection));
  EXPECT_NEAR(problem.SelectionCost(selection),
              SolveMqoExhaustive(problem).cost, 1e-9);
}

TEST(MqoBilpTest, NeedsMoreQubitsThanDirectEncoding) {
  // The direct [9] encoding uses one qubit per plan; the BILP route pays
  // for linearization and slack variables — the ablation's tradeoff.
  const MqoProblem example = MakePaperExampleMqo();
  const MqoBilpEncoding encoding = EncodeMqoAsBilp(example);
  EXPECT_GT(encoding.bilp.NumVariables(), example.NumPlans());
  // x per plan + (y, z, 3 slacks) per saving.
  EXPECT_EQ(encoding.bilp.NumVariables(),
            example.NumPlans() + 5 * example.NumSavings());
}

// --- OpenQASM export -----------------------------------------------------------

TEST(QasmExporterTest, HeaderAndRegisters) {
  QuantumCircuit c(3);
  c.H(0);
  const std::string qasm = ToQasm2(c);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
  EXPECT_EQ(qasm.find("creg"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
}

TEST(QasmExporterTest, MeasureAllAppendsClassicalRegister) {
  QuantumCircuit c(2);
  c.Cx(0, 1);
  const std::string qasm = ToQasm2(c, /*measure_all=*/true);
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(QasmExporterTest, RzzEmitsDecomposition) {
  QuantumCircuit c(2);
  c.Rzz(0, 1, 0.5);
  const std::string qasm = ToQasm2(c);
  EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
  // Two CX around the RZ.
  std::size_t first = qasm.find("cx q[0],q[1];");
  std::size_t second = qasm.find("cx q[0],q[1];", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST(QasmExporterTest, AllGateKindsSerializable) {
  QuantumCircuit c(2);
  c.H(0);
  c.X(0);
  c.Y(0);
  c.Z(0);
  c.Sx(0);
  c.Rx(0, 0.1);
  c.Ry(0, 0.2);
  c.Rz(0, 0.3);
  c.Cx(0, 1);
  c.Cz(0, 1);
  c.Rzz(0, 1, 0.4);
  c.Swap(0, 1);
  const std::string qasm = ToQasm2(c);
  for (const char* mnemonic :
       {"h ", "x ", "y ", "z ", "sx ", "rx(", "ry(", "rz(", "cx ", "cz ",
        "swap "}) {
    EXPECT_NE(qasm.find(mnemonic), std::string::npos) << mnemonic;
  }
}

// --- Heavy-hex generator --------------------------------------------------------

TEST(HeavyHexTest, DegreeBoundAndConnectivity) {
  for (const auto& [rows, cols] : std::vector<std::pair<int, int>>{
           {3, 9}, {5, 11}, {7, 15}}) {
    const CouplingMap map = MakeHeavyHex(rows, cols);
    EXPECT_LE(map.Graph().MaxDegree(), 3) << rows << "x" << cols;
    EXPECT_TRUE(map.IsConnected());
  }
}

TEST(HeavyHexTest, QubitCountIncludesBridges) {
  // 2 rows of 9 qubits + bridges at columns 0, 4, 8 -> 21 qubits.
  const CouplingMap map = MakeHeavyHex(2, 9);
  EXPECT_EQ(map.NumQubits(), 21);
}

TEST(HeavyHexTest, EagleClassDevice) {
  const CouplingMap eagle = MakeHeavyHex(7, 15);
  EXPECT_GT(eagle.NumQubits(), 120);  // Eagle-class scale
  EXPECT_LE(eagle.Graph().MaxDegree(), 3);
}

TEST(HeavyHexTest, SingleRowIsALine) {
  const CouplingMap line = MakeHeavyHex(1, 5);
  EXPECT_EQ(line.NumQubits(), 5);
  EXPECT_EQ(line.Graph().NumEdges(), 4);
}

TEST(HeavyHexTest, RoutableTarget) {
  const CouplingMap map = MakeHeavyHex(3, 9);
  const QuantumCircuit vqe = BuildVqeTemplate(10, 2);
  const TranspileResult result = Transpile(vqe, map, {});
  for (const Gate& g : result.circuit.Gates()) {
    if (g.NumQubits() == 2) {
      EXPECT_TRUE(map.AreCoupled(g.qubit0, g.qubit1));
    }
  }
}

// --- Reliability estimation ------------------------------------------------------

TEST(ReliabilityTest, EmptyCircuitIsPerfectExceptReadout) {
  const QuantumCircuit c(2);
  const ReliabilityEstimate estimate =
      EstimateCircuitReliability(MumbaiDevice(), c);
  EXPECT_DOUBLE_EQ(estimate.gate_error, 0.0);
  EXPECT_DOUBLE_EQ(estimate.decoherence_error, 0.0);
  EXPECT_GT(estimate.readout_error, 0.0);
  EXPECT_TRUE(estimate.within_coherence);
}

TEST(ReliabilityTest, MoreGatesLowerSuccess) {
  QuantumCircuit shallow(2);
  shallow.Cx(0, 1);
  QuantumCircuit deep(2);
  for (int i = 0; i < 50; ++i) deep.Cx(0, 1);
  const DeviceModel device = MumbaiDevice();
  EXPECT_GT(EstimateCircuitReliability(device, shallow).success_probability,
            EstimateCircuitReliability(device, deep).success_probability);
}

TEST(ReliabilityTest, CoherenceFlagFollowsDepthBudget) {
  const DeviceModel device = BrooklynDevice();
  QuantumCircuit over(1);
  for (int i = 0; i < device.MaxReliableDepth() + 1; ++i) over.Sx(0);
  EXPECT_FALSE(EstimateCircuitReliability(device, over).within_coherence);
  QuantumCircuit under(1);
  for (int i = 0; i < device.MaxReliableDepth() - 1; ++i) under.Sx(0);
  EXPECT_TRUE(EstimateCircuitReliability(device, under).within_coherence);
}

TEST(ReliabilityTest, TwoQubitGatesCostMoreThanSingle) {
  QuantumCircuit single(2);
  for (int i = 0; i < 10; ++i) single.Sx(0);
  QuantumCircuit twoq(2);
  for (int i = 0; i < 10; ++i) twoq.Cx(0, 1);
  const DeviceModel device = MumbaiDevice();
  EXPECT_GT(EstimateCircuitReliability(device, single).success_probability,
            EstimateCircuitReliability(device, twoq).success_probability);
}

TEST(ReliabilityTest, TranspiledMqoCircuitRealism) {
  // A routed 12-qubit QAOA circuit on Mumbai should have a low-but-nonzero
  // success probability — the regime the paper calls borderline.
  const QuantumCircuit vqe = BuildVqeTemplate(12, 3);
  const TranspileResult transpiled = Transpile(vqe, MakeMumbai27(), {});
  const ReliabilityEstimate estimate =
      EstimateCircuitReliability(MumbaiDevice(), transpiled.circuit);
  EXPECT_GT(estimate.gate_error, 0.5);  // hundreds of CX gates
  EXPECT_LT(estimate.success_probability, 0.5);
}

}  // namespace
}  // namespace qopt
