#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "qubo/ising_model.h"
#include "qubo/qubo_model.h"

namespace qopt {
namespace {

QuboModel MakeRandomQubo(int n, double density, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  qubo.AddOffset(rng.NextDouble(-5.0, 5.0));
  for (int i = 0; i < n; ++i) qubo.AddLinear(i, rng.NextDouble(-3.0, 3.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.NextBool(density)) {
        qubo.AddQuadratic(i, j, rng.NextDouble(-3.0, 3.0));
      }
    }
  }
  return qubo;
}

std::vector<std::uint8_t> BitsFromIndex(std::uint64_t index, int n) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bits[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((index >> i) & 1u);
  }
  return bits;
}

TEST(QuboModelTest, EmptyModelEnergyIsOffset) {
  QuboModel qubo(3);
  qubo.AddOffset(2.5);
  EXPECT_DOUBLE_EQ(qubo.Energy({0, 0, 0}), 2.5);
  EXPECT_DOUBLE_EQ(qubo.Energy({1, 1, 1}), 2.5);
}

TEST(QuboModelTest, LinearAndQuadraticAccumulate) {
  QuboModel qubo(2);
  qubo.AddLinear(0, 1.0);
  qubo.AddLinear(0, 2.0);
  qubo.AddQuadratic(0, 1, 0.5);
  qubo.AddQuadratic(1, 0, 0.25);  // normalized to the same entry
  EXPECT_DOUBLE_EQ(qubo.Linear(0), 3.0);
  EXPECT_DOUBLE_EQ(qubo.Quadratic(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(qubo.Quadratic(1, 0), 0.75);
  EXPECT_EQ(qubo.NumQuadraticTerms(), 1);
}

TEST(QuboModelTest, EnergyOfKnownAssignments) {
  QuboModel qubo(2);
  qubo.AddLinear(0, 1.0);
  qubo.AddLinear(1, -2.0);
  qubo.AddQuadratic(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(qubo.Energy({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(qubo.Energy({1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(qubo.Energy({0, 1}), -2.0);
  EXPECT_DOUBLE_EQ(qubo.Energy({1, 1}), 3.0);
}

TEST(QuboModelTest, CompressRemovesZeroTerms) {
  QuboModel qubo(3);
  qubo.AddQuadratic(0, 1, 1.0);
  qubo.AddQuadratic(0, 1, -1.0);
  qubo.AddQuadratic(1, 2, 2.0);
  EXPECT_EQ(qubo.NumQuadraticTerms(), 2);
  qubo.Compress();
  EXPECT_EQ(qubo.NumQuadraticTerms(), 1);
  EXPECT_DOUBLE_EQ(qubo.Quadratic(1, 2), 2.0);
}

TEST(QuboModelTest, InteractionGraphMatchesTerms) {
  QuboModel qubo(4);
  qubo.AddQuadratic(0, 2, 1.0);
  qubo.AddQuadratic(1, 3, -1.0);
  const SimpleGraph graph = qubo.InteractionGraph();
  EXPECT_EQ(graph.NumVertices(), 4);
  EXPECT_EQ(graph.NumEdges(), 2);
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(1, 3));
}

class QuboFlipDeltaTest : public ::testing::TestWithParam<int> {};

TEST_P(QuboFlipDeltaTest, FlipDeltaMatchesEnergyDifference) {
  const QuboModel qubo = MakeRandomQubo(8, 0.4, GetParam());
  const auto adjacency = qubo.BuildAdjacency();
  Rng rng(GetParam() + 100);
  std::vector<std::uint8_t> bits(8);
  for (auto& b : bits) b = rng.NextBool() ? 1 : 0;
  for (int i = 0; i < 8; ++i) {
    const double before = qubo.Energy(bits);
    const double delta = qubo.FlipDelta(bits, i, adjacency);
    bits[static_cast<std::size_t>(i)] ^= 1;
    EXPECT_NEAR(qubo.Energy(bits), before + delta, 1e-9);
    bits[static_cast<std::size_t>(i)] ^= 1;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, QuboFlipDeltaTest,
                         ::testing::Range(0, 8));

TEST(IsingModelTest, EnergyOfKnownSpins) {
  IsingModel ising(2);
  ising.AddField(0, 0.5);
  ising.AddCoupling(0, 1, -1.0);
  EXPECT_DOUBLE_EQ(ising.Energy({1, 1}), 0.5 - 1.0);
  EXPECT_DOUBLE_EQ(ising.Energy({-1, 1}), -0.5 + 1.0);
  EXPECT_DOUBLE_EQ(ising.Energy({-1, -1}), -0.5 - 1.0);
}

TEST(IsingModelTest, CouplingNormalization) {
  IsingModel ising(3);
  ising.AddCoupling(2, 0, 1.5);
  EXPECT_DOUBLE_EQ(ising.Coupling(0, 2), 1.5);
  const auto couplings = ising.Couplings();
  ASSERT_EQ(couplings.size(), 1u);
  EXPECT_EQ(couplings[0].first, std::make_pair(0, 2));
}

class ConversionRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ConversionRoundTripTest, QuboToIsingPreservesAllEnergies) {
  const int n = 6;
  const QuboModel qubo = MakeRandomQubo(n, 0.5, GetParam());
  const IsingModel ising = QuboToIsing(qubo);
  for (std::uint64_t index = 0; index < (1u << n); ++index) {
    const auto bits = BitsFromIndex(index, n);
    EXPECT_NEAR(qubo.Energy(bits), ising.Energy(BitsToSpins(bits)), 1e-9);
  }
}

TEST_P(ConversionRoundTripTest, IsingToQuboIsInverse) {
  const int n = 6;
  const QuboModel qubo = MakeRandomQubo(n, 0.5, GetParam());
  const QuboModel round_trip = IsingToQubo(QuboToIsing(qubo));
  for (std::uint64_t index = 0; index < (1u << n); ++index) {
    const auto bits = BitsFromIndex(index, n);
    EXPECT_NEAR(qubo.Energy(bits), round_trip.Energy(bits), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ConversionRoundTripTest,
                         ::testing::Range(0, 10));

TEST(ConversionsTest, BitsToSpinsAndBack) {
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0};
  const std::vector<int> spins = BitsToSpins(bits);
  EXPECT_EQ(spins, (std::vector<int>{-1, 1, 1, -1}));
  EXPECT_EQ(SpinsToBits(spins), bits);
}

TEST(BruteForceTest, FindsKnownMinimum) {
  QuboModel qubo(2);
  qubo.AddLinear(0, -1.0);
  qubo.AddLinear(1, -1.0);
  qubo.AddQuadratic(0, 1, 3.0);
  const BruteForceResult result = SolveQuboBruteForce(qubo);
  EXPECT_DOUBLE_EQ(result.best_energy, -1.0);
  // Two symmetric optima: {1,0} and {0,1}.
  EXPECT_EQ(result.num_optima, 2u);
}

class BruteForceParamTest : public ::testing::TestWithParam<int> {};

TEST_P(BruteForceParamTest, MatchesNaiveEnumeration) {
  const int n = 10;
  const QuboModel qubo = MakeRandomQubo(n, 0.3, GetParam());
  const BruteForceResult result = SolveQuboBruteForce(qubo);
  double naive_best = qubo.Energy(BitsFromIndex(0, n));
  for (std::uint64_t index = 1; index < (1u << n); ++index) {
    naive_best = std::min(naive_best, qubo.Energy(BitsFromIndex(index, n)));
  }
  EXPECT_NEAR(result.best_energy, naive_best, 1e-8);
  EXPECT_NEAR(qubo.Energy(result.best_bits), naive_best, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BruteForceParamTest,
                         ::testing::Range(0, 8));

TEST(BruteForceTest, ZeroVariablesHandled) {
  QuboModel qubo(0);
  qubo.AddOffset(3.0);
  const BruteForceResult result = SolveQuboBruteForce(qubo);
  EXPECT_DOUBLE_EQ(result.best_energy, 3.0);
}

TEST(BruteForceTest, HardCapRejectsOversizedProblems) {
  // 2^31 assignments would walk for hours; past kBruteForceHardCap the
  // Try variant must refuse with kInvalidArgument instead of hanging —
  // even when the caller passes a larger explicit limit.
  const QuboModel oversized(kBruteForceHardCap + 1);
  const auto refused = TrySolveQuboBruteForce(oversized);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  const auto still_refused =
      TrySolveQuboBruteForce(oversized, /*max_variables=*/1000);
  ASSERT_FALSE(still_refused.ok());
  EXPECT_EQ(still_refused.status().code(), StatusCode::kInvalidArgument);
}

TEST(BruteForceTest, CallerCapBelowTheHardCapStillApplies) {
  const QuboModel qubo(12);
  const auto refused = TrySolveQuboBruteForce(qubo, /*max_variables=*/10);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TrySolveQuboBruteForce(qubo, /*max_variables=*/12).ok());
}

}  // namespace
}  // namespace qopt
