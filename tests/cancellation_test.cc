// Deadline / cancellation behavior of the solver stack, from the kernel
// loops up through the facade: solves under absurdly tight budgets must
// return quickly with a valid Status at every thread count — never crash,
// never hang, never hand back an inconsistent report.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "anneal/simulated_annealer.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/quantum_optimizer.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_generator.h"
#include "variational/variational_solver.h"

namespace qopt {
namespace {

QuboModel DenseQubo(int n, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel qubo(n);
  for (int i = 0; i < n; ++i) {
    qubo.AddLinear(i, rng.NextDouble(-1.0, 1.0));
    for (int j = i + 1; j < n; ++j) {
      qubo.AddQuadratic(i, j, rng.NextDouble(-1.0, 1.0));
    }
  }
  return qubo;
}

/// An SA workload big enough to be nowhere near done in a few ms.
AnnealOptions HeavyAnneal() {
  AnnealOptions options;
  options.num_reads = 64;
  options.num_sweeps = 20000;
  options.seed = 9;
  return options;
}

TEST(CancellationTest, AnnealingIsAnytimeUnderDeadline) {
  AnnealOptions options = HeavyAnneal();
  options.deadline = Deadline::AfterMillis(10);
  Stopwatch watch;
  StatusOr<AnnealResult> result =
      TrySolveQuboWithAnnealing(DenseQubo(30, 1), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->timed_out);
  // Valid best-so-far state of the right width, within a sane multiple of
  // the budget (sweep boundaries are microseconds apart).
  EXPECT_EQ(result->best_bits.size(), 30u);
  EXPECT_LT(watch.ElapsedMillis(), 2000.0);
}

TEST(CancellationTest, AnnealingZeroBudgetStillReturnsAValidState) {
  AnnealOptions options = HeavyAnneal();
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<AnnealResult> result =
      TrySolveQuboWithAnnealing(DenseQubo(12, 2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_EQ(result->best_bits.size(), 12u);
}

TEST(CancellationTest, AnnealingCancelReturnsCancelled) {
  CancelToken token;
  token.Cancel();
  AnnealOptions options = HeavyAnneal();
  options.deadline = Deadline().WithToken(&token);
  StatusOr<AnnealResult> result =
      TrySolveQuboWithAnnealing(DenseQubo(12, 3), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, QaoaDeadlineIsAnErrorNotAPartialResult) {
  VariationalOptions options;
  options.max_iterations = 100000;
  options.deadline = Deadline::AfterMillis(5);
  Stopwatch watch;
  StatusOr<VariationalResult> result =
      TrySolveQuboWithQaoa(DenseQubo(12, 4), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
}

TEST(CancellationTest, VqeCancelMidRunReturnsCancelled) {
  CancelToken token;
  token.Cancel();
  VariationalOptions options;
  options.max_iterations = 100000;
  options.deadline = Deadline().WithToken(&token);
  StatusOr<VariationalResult> result =
      TrySolveQuboWithVqe(DenseQubo(10, 5), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// --- Facade acceptance: tight budgets at several thread counts ---------------

/// A join-order problem far too big to finish within tens of ms on the SA
/// settings below.
QueryGraph OversizedJoinQuery() {
  QueryGeneratorOptions gen;
  gen.num_relations = 8;
  gen.num_predicates = 10;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 100000.0;
  gen.selectivity_min = 0.001;
  gen.seed = 13;
  return GenerateRandomQuery(gen);
}

JoinOrderEncoderOptions JoinEncoder() {
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = {10.0, 100.0};
  encoder.safe_slack_bounds = true;
  return encoder;
}

OptimizerOptions HeavyJoinSolve() {
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 64;
  options.anneal.num_sweeps = 50000;
  options.seed = 21;
  return options;
}

/// One report invariant check shared by every stressed solve: the solve
/// either produced a consistent report or one of the two budget errors.
void ExpectValidOutcome(const StatusOr<JoinOrderSolveReport>& solved) {
  if (!solved.ok()) {
    EXPECT_TRUE(solved.status().code() == StatusCode::kDeadlineExceeded ||
                solved.status().code() == StatusCode::kCancelled)
        << solved.status().ToString();
    return;
  }
  EXPECT_GE(solved->stats.attempts, 1);
  EXPECT_GE(solved->stats.elapsed_ms, 0.0);
  if (solved->stats.timed_out) {
    // timed_out on a successful report implies a degraded result.
    EXPECT_TRUE(solved->degraded);
    EXPECT_FALSE(solved->degradation_reason.empty());
  }
}

TEST(CancellationStressTest, FiftyMsJoinSolveReturnsInBudgetAtAllThreadCounts) {
  const QueryGraph graph = OversizedJoinQuery();
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    OptimizerOptions options = HeavyJoinSolve();
    constexpr double kBudgetMs = 50.0;
    options.budget.deadline = Deadline::AfterMillis(kBudgetMs);
    Stopwatch watch;
    StatusOr<JoinOrderSolveReport> solved =
        TrySolveJoinOrder(graph, JoinEncoder(), options);
    const double elapsed = watch.ElapsedMillis();
    // Acceptance bound: within 2x the budget (plus scheduler slack).
    EXPECT_LT(elapsed, 2 * kBudgetMs + 100.0) << "threads=" << threads;
    ExpectValidOutcome(solved);
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    EXPECT_TRUE(solved->stats.timed_out) << "threads=" << threads;
  }
}

TEST(CancellationStressTest, RandomTinyDeadlinesNeverCrashOrMisreport) {
  const QueryGraph graph = OversizedJoinQuery();
  const MqoProblem mqo = MakePaperExampleMqo();
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    for (double budget_ms : {0.0, 1.0, 3.0, 7.0, 20.0}) {
      OptimizerOptions options = HeavyJoinSolve();
      options.budget.deadline = Deadline::AfterMillis(budget_ms);
      ExpectValidOutcome(TrySolveJoinOrder(graph, JoinEncoder(), options));

      OptimizerOptions qaoa = options;
      qaoa.backend = Backend::kQaoa;
      qaoa.variational.max_iterations = 100000;
      StatusOr<MqoSolveReport> mqo_solved = TrySolveMqo(mqo, qaoa);
      if (!mqo_solved.ok()) {
        EXPECT_TRUE(
            mqo_solved.status().code() == StatusCode::kDeadlineExceeded ||
            mqo_solved.status().code() == StatusCode::kCancelled)
            << mqo_solved.status().ToString();
      } else if (mqo_solved->stats.timed_out) {
        EXPECT_TRUE(mqo_solved->degraded);
      }
    }
  }
}

TEST(CancellationStressTest, ZeroBudgetFailsFastWithDeadlineExceeded) {
  OptimizerOptions options = HeavyJoinSolve();
  options.budget.deadline = Deadline::AfterMillis(0);
  Stopwatch watch;
  StatusOr<JoinOrderSolveReport> solved =
      TrySolveJoinOrder(OversizedJoinQuery(), JoinEncoder(), options);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(watch.ElapsedMillis(), 1000.0);
}

TEST(CancellationStressTest, CancelledSolveNeverDegrades) {
  CancelToken token;
  token.Cancel();
  OptimizerOptions options = HeavyJoinSolve();
  options.backend = Backend::kQaoa;
  options.budget.deadline = Deadline().WithToken(&token);
  StatusOr<MqoSolveReport> solved =
      TrySolveMqo(MakePaperExampleMqo(), options);
  // Cancellation is a caller decision: no classical stand-in, kCancelled
  // all the way out.
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kCancelled);
}

TEST(CancellationStressTest, CancelDuringRetryBackoffReturnsCancelled) {
  // Every annealer attempt fails with a retryable fault, so when the
  // token fires the facade is sitting in a 100-200 ms backoff sleep.
  // Regression: the interrupted sleep used to be misreported as
  // kDeadlineExceeded and routed into the classical salvage path,
  // producing a degraded report for a solve the caller had cancelled.
  FaultInjection::Instance().Arm("annealer.sweep",
                                 UnavailableError("injected transient"), 0,
                                 /*times=*/-1);
  CancelToken token;
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 2;
  options.anneal.num_sweeps = 10;
  options.seed = 9;
  options.budget.deadline = Deadline().WithToken(&token);
  options.budget.retry.max_attempts = 10;
  options.budget.retry.initial_backoff_ms = 200.0;
  options.budget.retry.max_backoff_ms = 200.0;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  StatusOr<MqoSolveReport> solved =
      TrySolveMqo(MakePaperExampleMqo(), options);
  canceller.join();
  FaultInjection::Instance().DisarmAll();
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kCancelled);
}

TEST(CancellationStressTest, QuantumDeadlineDegradesToClassicalWithinBudget) {
  // The QAOA stage gets 80% of the budget and cannot finish (SPSA runs
  // its full iteration budget, no early convergence exit); the reserved
  // slack must still produce a degraded classical result. The budget is
  // generous enough (100 ms of slack) that scheduler hiccups on a loaded
  // test machine cannot eat the salvage window.
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;  // 12 qubits: fast per-iteration, slow overall
  gen.seed = 6;
  OptimizerOptions options;
  options.backend = Backend::kQaoa;
  options.variational.optimizer = OuterOptimizer::kSpsa;
  options.variational.max_iterations = 100000000;
  options.seed = 3;
  options.budget.deadline = Deadline::AfterMillis(500);
  StatusOr<MqoSolveReport> solved =
      TrySolveMqo(GenerateMqoProblem(gen), options);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_TRUE(solved->degraded);
  EXPECT_EQ(solved->backend_used, Backend::kSimulatedAnnealing);
  // The salvage read completed inside the reserved slack, so the report
  // is degraded but not timed out — timed_out tracks the salvage read
  // itself, not the quantum stage that ran out of budget before it.
  EXPECT_FALSE(solved->stats.timed_out);
  EXPECT_EQ(solved->stats.attempts, 2);
}

TEST(CancellationStressTest, GenerousDeadlineLeavesResultUndegraded) {
  // A completed run under a loose deadline must match the deadline-free
  // run bit-for-bit (determinism for runs that finish).
  OptimizerOptions options;
  options.backend = Backend::kSimulatedAnnealing;
  options.anneal.num_reads = 8;
  options.anneal.num_sweeps = 200;
  options.seed = 17;
  const QueryGraph graph = MakePaperExampleQuery();
  StatusOr<JoinOrderSolveReport> free_run =
      TrySolveJoinOrder(graph, JoinEncoder(), options);
  options.budget.deadline = Deadline::AfterMillis(1e7);
  StatusOr<JoinOrderSolveReport> budgeted =
      TrySolveJoinOrder(graph, JoinEncoder(), options);
  ASSERT_TRUE(free_run.ok());
  ASSERT_TRUE(budgeted.ok());
  EXPECT_FALSE(budgeted->degraded);
  EXPECT_FALSE(budgeted->stats.timed_out);
  EXPECT_EQ(budgeted->qubo_energy, free_run->qubo_energy);
  EXPECT_EQ(budgeted->solution.order, free_run->solution.order);
}

}  // namespace
}  // namespace qopt
