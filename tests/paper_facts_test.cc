// Assertions that pin statements made in the paper's text directly to
// library behaviour, plus a few cross-module consistency properties.
#include <gtest/gtest.h>

#include <cmath>

#include "anneal/chimera.h"
#include "anneal/pegasus.h"
#include "anneal/simulated_annealer.h"
#include "bilp/bilp_branch_and_bound.h"
#include "bilp/bilp_to_qubo.h"
#include "circuit/statevector.h"
#include "common/random.h"
#include "core/device_model.h"
#include "joinorder/join_order_baselines.h"
#include "joinorder/join_order_bilp_encoder.h"
#include "joinorder/query_graph.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/brute_force_solver.h"
#include "qubo/conversions.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace qopt {
namespace {

// --- Ch. 1 / Sec. 3.6: hardware facts the paper quotes ---------------------

TEST(PaperFactsTest, AdvantageOffersOver5000Qubits) {
  // "the D-Wave Advantage system offers over 5,000 qubits"
  EXPECT_GT(MakePegasus(16).NumVertices(), 5000);
}

TEST(PaperFactsTest, LargestIbmqSystemHas65Qubits) {
  // "the largest available IBM-Q system ... features 65 qubits"
  EXPECT_EQ(BrooklynDevice().num_qubits, 65);
}

TEST(PaperFactsTest, PegasusHas15CouplersPerQubit) {
  // "In the Pegasus topology, 15 couplers exist per qubit" (Sec. 3.6.2)
  EXPECT_EQ(MakePegasus(8).MaxDegree(), 15);
}

TEST(PaperFactsTest, ChimeraHasSixCouplersPerQubit) {
  // "each qubit is connected to at most six other qubits in a Chimera
  // topology" (Sec. 3.6.2)
  EXPECT_EQ(MakeChimera(4, 4, 4).MaxDegree(), 6);
}

TEST(PaperFactsTest, DWave2xHasOver1000PhysicalQubits) {
  // "The D-Wave 2X system used in [9] has over 1,000 physical qubits"
  EXPECT_GT(MakeChimera(12, 12, 4).NumVertices(), 1000);
}

// --- Sec. 3.4.2: QAOA structure ---------------------------------------------

TEST(PaperFactsTest, QaoaDepthBoundedByTermsTimesReps) {
  // "an upper bound for the circuit depth is given by mp + p" — in gate
  // layers before decomposition, counting the initial H layer separately.
  MqoGeneratorOptions gen;
  gen.num_queries = 3;
  gen.plans_per_query = 4;
  gen.seed = 5;
  const IsingModel ising =
      QuboToIsing(EncodeMqoAsQubo(GenerateMqoProblem(gen)).qubo);
  int m = ising.NumCouplings();
  for (int i = 0; i < ising.NumSpins(); ++i) {
    if (ising.Field(i) != 0.0) ++m;
  }
  for (int p = 1; p <= 3; ++p) {
    const QuantumCircuit circuit = BuildQaoaTemplate(ising, p);
    EXPECT_LE(circuit.Depth(), m * p + p + 1) << "p=" << p;
  }
}

TEST(PaperFactsTest, VqeParameterCountIndependentOfProblemDensity) {
  // Sec. 5.3.2: "the number of quadratic terms does not impact the
  // circuit depth for the state preparation of the VQE algorithm".
  EXPECT_EQ(BuildVqeTemplate(10, 3).Depth(), BuildVqeTemplate(10, 3).Depth());
  EXPECT_EQ(RealAmplitudesNumParameters(10, 3), 40);
}

// --- Sec. 5.3.1: one qubit per plan ------------------------------------------

TEST(PaperFactsTest, MqoQubitCountEqualsPlanCount) {
  for (int queries : {2, 5, 9}) {
    MqoGeneratorOptions gen;
    gen.num_queries = queries;
    gen.plans_per_query = 6;
    gen.seed = queries;
    const MqoProblem problem = GenerateMqoProblem(gen);
    EXPECT_EQ(EncodeMqoAsQubo(problem).qubo.NumVariables(),
              problem.NumPlans());
  }
}

TEST(PaperFactsTest, MqoQuadraticTermsComeFromEmAndEs) {
  // Quadratic terms appear only in E_M (intra-query pairs) and E_S
  // (savings pairs) — Sec. 5.3.1.
  MqoGeneratorOptions gen;
  gen.num_queries = 4;
  gen.plans_per_query = 5;
  gen.saving_density = 0.25;
  gen.seed = 17;
  const MqoProblem problem = GenerateMqoProblem(gen);
  const int intra_query_pairs = 4 * (5 * 4 / 2);
  EXPECT_EQ(EncodeMqoAsQubo(problem).qubo.NumQuadraticTerms(),
            intra_query_pairs + problem.NumSavings());
}

// --- Sec. 6.3.1: counting formulas vs built models ---------------------------

class CountingGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CountingGridTest, FormulaMatchesConstructedModel) {
  const auto [relations, predicate_factor, thresholds] = GetParam();
  const int predicates = predicate_factor * (relations - 1);
  if (predicates > relations * (relations - 1) / 2) GTEST_SKIP();
  QueryGeneratorOptions gen;
  gen.num_relations = relations;
  gen.num_predicates = predicates;
  gen.seed = 3;
  const QueryGraph graph = GenerateRandomQuery(gen);
  JoinOrderEncoderOptions options;
  options.thresholds.clear();
  for (int r = 0; r < thresholds; ++r) {
    options.thresholds.push_back(10.0 * (r + 1));
  }
  const JoinOrderEncoding encoding = EncodeJoinOrderAsBilp(graph, options);
  const auto counts =
      CountJoinOrderQubits(relations, predicates, thresholds, 1.0, 10.0);
  EXPECT_EQ(encoding.bilp.NumVariables(), counts.total);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CountingGridTest,
    ::testing::Combine(::testing::Values(3, 5, 8, 12),
                       ::testing::Values(1, 2),
                       ::testing::Values(1, 3, 6)));

// --- Gate identities -----------------------------------------------------------

double StateDistance(const QuantumCircuit& a, const QuantumCircuit& b) {
  const auto sa = SimulateCircuit(a).Amplitudes();
  const auto sb = SimulateCircuit(b).Amplitudes();
  std::complex<double> inner = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) inner += std::conj(sa[i]) * sb[i];
  return 1.0 - std::norm(inner);
}

TEST(GateIdentityTest, HZHEqualsX) {
  QuantumCircuit prep(1);
  prep.Ry(0, 0.7);
  QuantumCircuit hzh = prep;
  hzh.H(0);
  hzh.Z(0);
  hzh.H(0);
  QuantumCircuit x = prep;
  x.X(0);
  EXPECT_NEAR(StateDistance(hzh, x), 0.0, 1e-12);
}

TEST(GateIdentityTest, HXHEqualsZ) {
  QuantumCircuit prep(1);
  prep.Ry(0, 1.1);
  QuantumCircuit hxh = prep;
  hxh.H(0);
  hxh.X(0);
  hxh.H(0);
  QuantumCircuit z = prep;
  z.Z(0);
  EXPECT_NEAR(StateDistance(hxh, z), 0.0, 1e-12);
}

TEST(GateIdentityTest, SxSquaredEqualsX) {
  QuantumCircuit prep(1);
  prep.Ry(0, 0.4);
  QuantumCircuit sxsx = prep;
  sxsx.Sx(0);
  sxsx.Sx(0);
  QuantumCircuit x = prep;
  x.X(0);
  EXPECT_NEAR(StateDistance(sxsx, x), 0.0, 1e-12);
}

TEST(GateIdentityTest, DoubleSwapIsIdentity) {
  QuantumCircuit prep(2);
  prep.Ry(0, 0.5);
  prep.Ry(1, 1.3);
  prep.Cx(0, 1);
  QuantumCircuit twice = prep;
  twice.Swap(0, 1);
  twice.Swap(0, 1);
  EXPECT_NEAR(StateDistance(twice, prep), 0.0, 1e-12);
}

TEST(GateIdentityTest, CzOrderIrrelevant) {
  QuantumCircuit prep(2);
  prep.H(0);
  prep.H(1);
  QuantumCircuit ab = prep;
  ab.Cz(0, 1);
  QuantumCircuit ba = prep;
  ba.Cz(1, 0);
  EXPECT_NEAR(StateDistance(ab, ba), 0.0, 1e-12);
}

// --- Cross-module properties -----------------------------------------------------

TEST(CrossModuleTest, RelationRelabelingPreservesOptimalCost) {
  // Renaming relations must not change the optimal C_out.
  QueryGeneratorOptions gen;
  gen.num_relations = 6;
  gen.num_predicates = 7;
  gen.cardinality_min = 10.0;
  gen.cardinality_max = 10000.0;
  gen.selectivity_min = 0.01;
  gen.seed = 8;
  const QueryGraph graph = GenerateRandomQuery(gen);
  // Relabel r -> (r + 2) mod 6.
  std::vector<double> cards(6);
  for (int r = 0; r < 6; ++r) {
    cards[static_cast<std::size_t>((r + 2) % 6)] = graph.Cardinality(r);
  }
  QueryGraph relabeled(cards);
  for (const auto& p : graph.Predicates()) {
    relabeled.AddPredicate((p.rel1 + 2) % 6, (p.rel2 + 2) % 6, p.selectivity);
  }
  EXPECT_NEAR(SolveJoinOrderDp(graph).cost, SolveJoinOrderDp(relabeled).cost,
              SolveJoinOrderDp(graph).cost * 1e-12);
}

class RandomBilpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBilpTest, BranchAndBoundAgreesWithQuboGroundState) {
  // Random feasible BILPs: the exact B&B optimum and the brute-forced
  // QUBO ground state must coincide.
  Rng rng(GetParam() + 42);
  BilpProblem bilp;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    bilp.AddVariable("x", rng.NextDouble(0.0, 5.0));
  }
  // Three random "pick k of subset" constraints (always feasible since
  // k <= subset size).
  for (int c = 0; c < 3; ++c) {
    BilpProblem::Constraint constraint;
    for (int i = 0; i < n; ++i) {
      if (rng.NextBool(0.5)) constraint.terms.emplace_back(i, 1.0);
    }
    if (constraint.terms.empty()) constraint.terms.emplace_back(0, 1.0);
    constraint.rhs = static_cast<double>(
        1 + rng.NextUint64(constraint.terms.size()));
    bilp.AddConstraint(std::move(constraint));
  }
  const auto bnb = SolveBilpBranchAndBound(bilp);
  const BilpQuboEncoding encoding = EncodeBilpAsQubo(bilp);
  const BruteForceResult ground = SolveQuboBruteForce(encoding.qubo);
  if (!bnb.has_value()) {
    // Conflicting constraints can make the instance infeasible; the QUBO
    // ground state must then violate some constraint.
    EXPECT_FALSE(bilp.IsFeasible(ground.best_bits));
    return;
  }
  EXPECT_TRUE(bilp.IsFeasible(ground.best_bits));
  EXPECT_NEAR(bilp.ObjectiveValue(ground.best_bits), bnb->objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBilpTest, ::testing::Range(0, 10));

TEST(CrossModuleTest, SaRespectsBruteForceOnMediumProblems) {
  // 16-variable MQO-style QUBOs: SA with a generous budget finds the
  // exact ground state.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    MqoGeneratorOptions gen;
    gen.num_queries = 4;
    gen.plans_per_query = 4;
    gen.saving_density = 0.3;
    gen.seed = seed;
    const MqoQuboEncoding encoding =
        EncodeMqoAsQubo(GenerateMqoProblem(gen));
    AnnealOptions anneal;
    anneal.num_reads = 40;
    anneal.num_sweeps = 1500;
    anneal.seed = seed;
    EXPECT_NEAR(SolveQuboWithAnnealing(encoding.qubo, anneal).best_energy,
                SolveQuboBruteForce(encoding.qubo).best_energy, 1e-8);
  }
}

}  // namespace
}  // namespace qopt
