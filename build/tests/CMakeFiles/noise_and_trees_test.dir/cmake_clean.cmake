file(REMOVE_RECURSE
  "CMakeFiles/noise_and_trees_test.dir/noise_and_trees_test.cc.o"
  "CMakeFiles/noise_and_trees_test.dir/noise_and_trees_test.cc.o.d"
  "noise_and_trees_test"
  "noise_and_trees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_and_trees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
