# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for noise_and_trees_test.
