# Empty compiler generated dependencies file for noise_and_trees_test.
# This may be replaced when dependencies are built.
