# Empty dependencies file for qubo_test.
# This may be replaced when dependencies are built.
