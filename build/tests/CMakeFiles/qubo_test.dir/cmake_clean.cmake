file(REMOVE_RECURSE
  "CMakeFiles/qubo_test.dir/qubo_test.cc.o"
  "CMakeFiles/qubo_test.dir/qubo_test.cc.o.d"
  "qubo_test"
  "qubo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
