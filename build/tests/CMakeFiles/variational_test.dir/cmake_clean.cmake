file(REMOVE_RECURSE
  "CMakeFiles/variational_test.dir/variational_test.cc.o"
  "CMakeFiles/variational_test.dir/variational_test.cc.o.d"
  "variational_test"
  "variational_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
