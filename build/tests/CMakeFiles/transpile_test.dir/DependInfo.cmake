
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transpile_test.cc" "tests/CMakeFiles/transpile_test.dir/transpile_test.cc.o" "gcc" "tests/CMakeFiles/transpile_test.dir/transpile_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_variational.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_mqo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_joinorder.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_bilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
