file(REMOVE_RECURSE
  "CMakeFiles/paper_facts_test.dir/paper_facts_test.cc.o"
  "CMakeFiles/paper_facts_test.dir/paper_facts_test.cc.o.d"
  "paper_facts_test"
  "paper_facts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_facts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
