# Empty compiler generated dependencies file for paper_facts_test.
# This may be replaced when dependencies are built.
