file(REMOVE_RECURSE
  "CMakeFiles/adiabatic_test.dir/adiabatic_test.cc.o"
  "CMakeFiles/adiabatic_test.dir/adiabatic_test.cc.o.d"
  "adiabatic_test"
  "adiabatic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adiabatic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
