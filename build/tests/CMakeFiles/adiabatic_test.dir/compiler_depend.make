# Empty compiler generated dependencies file for adiabatic_test.
# This may be replaced when dependencies are built.
