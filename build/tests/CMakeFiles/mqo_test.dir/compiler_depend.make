# Empty compiler generated dependencies file for mqo_test.
# This may be replaced when dependencies are built.
