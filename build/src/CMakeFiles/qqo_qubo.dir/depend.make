# Empty dependencies file for qqo_qubo.
# This may be replaced when dependencies are built.
