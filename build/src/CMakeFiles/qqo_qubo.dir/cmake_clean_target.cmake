file(REMOVE_RECURSE
  "libqqo_qubo.a"
)
