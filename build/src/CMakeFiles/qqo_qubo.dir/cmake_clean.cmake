file(REMOVE_RECURSE
  "CMakeFiles/qqo_qubo.dir/qubo/brute_force_solver.cc.o"
  "CMakeFiles/qqo_qubo.dir/qubo/brute_force_solver.cc.o.d"
  "CMakeFiles/qqo_qubo.dir/qubo/conversions.cc.o"
  "CMakeFiles/qqo_qubo.dir/qubo/conversions.cc.o.d"
  "CMakeFiles/qqo_qubo.dir/qubo/ising_model.cc.o"
  "CMakeFiles/qqo_qubo.dir/qubo/ising_model.cc.o.d"
  "CMakeFiles/qqo_qubo.dir/qubo/qubo_model.cc.o"
  "CMakeFiles/qqo_qubo.dir/qubo/qubo_model.cc.o.d"
  "libqqo_qubo.a"
  "libqqo_qubo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_qubo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
