
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/edge_coloring.cc" "src/CMakeFiles/qqo_graph.dir/graph/edge_coloring.cc.o" "gcc" "src/CMakeFiles/qqo_graph.dir/graph/edge_coloring.cc.o.d"
  "/root/repo/src/graph/shortest_paths.cc" "src/CMakeFiles/qqo_graph.dir/graph/shortest_paths.cc.o" "gcc" "src/CMakeFiles/qqo_graph.dir/graph/shortest_paths.cc.o.d"
  "/root/repo/src/graph/simple_graph.cc" "src/CMakeFiles/qqo_graph.dir/graph/simple_graph.cc.o" "gcc" "src/CMakeFiles/qqo_graph.dir/graph/simple_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
