file(REMOVE_RECURSE
  "libqqo_graph.a"
)
