# Empty dependencies file for qqo_graph.
# This may be replaced when dependencies are built.
