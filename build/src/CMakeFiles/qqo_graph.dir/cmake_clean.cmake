file(REMOVE_RECURSE
  "CMakeFiles/qqo_graph.dir/graph/edge_coloring.cc.o"
  "CMakeFiles/qqo_graph.dir/graph/edge_coloring.cc.o.d"
  "CMakeFiles/qqo_graph.dir/graph/shortest_paths.cc.o"
  "CMakeFiles/qqo_graph.dir/graph/shortest_paths.cc.o.d"
  "CMakeFiles/qqo_graph.dir/graph/simple_graph.cc.o"
  "CMakeFiles/qqo_graph.dir/graph/simple_graph.cc.o.d"
  "libqqo_graph.a"
  "libqqo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
