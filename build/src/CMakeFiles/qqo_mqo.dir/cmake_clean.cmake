file(REMOVE_RECURSE
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_baselines.cc.o"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_baselines.cc.o.d"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_bilp_encoder.cc.o"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_bilp_encoder.cc.o.d"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_generator.cc.o"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_generator.cc.o.d"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_problem.cc.o"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_problem.cc.o.d"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_qubo_encoder.cc.o"
  "CMakeFiles/qqo_mqo.dir/mqo/mqo_qubo_encoder.cc.o.d"
  "libqqo_mqo.a"
  "libqqo_mqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_mqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
