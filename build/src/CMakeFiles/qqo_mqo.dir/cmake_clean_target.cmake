file(REMOVE_RECURSE
  "libqqo_mqo.a"
)
