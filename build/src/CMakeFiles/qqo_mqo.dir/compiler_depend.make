# Empty compiler generated dependencies file for qqo_mqo.
# This may be replaced when dependencies are built.
