file(REMOVE_RECURSE
  "CMakeFiles/qqo_circuit.dir/circuit/gate.cc.o"
  "CMakeFiles/qqo_circuit.dir/circuit/gate.cc.o.d"
  "CMakeFiles/qqo_circuit.dir/circuit/noise_model.cc.o"
  "CMakeFiles/qqo_circuit.dir/circuit/noise_model.cc.o.d"
  "CMakeFiles/qqo_circuit.dir/circuit/qasm_exporter.cc.o"
  "CMakeFiles/qqo_circuit.dir/circuit/qasm_exporter.cc.o.d"
  "CMakeFiles/qqo_circuit.dir/circuit/quantum_circuit.cc.o"
  "CMakeFiles/qqo_circuit.dir/circuit/quantum_circuit.cc.o.d"
  "CMakeFiles/qqo_circuit.dir/circuit/statevector.cc.o"
  "CMakeFiles/qqo_circuit.dir/circuit/statevector.cc.o.d"
  "libqqo_circuit.a"
  "libqqo_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
