file(REMOVE_RECURSE
  "libqqo_circuit.a"
)
