# Empty compiler generated dependencies file for qqo_circuit.
# This may be replaced when dependencies are built.
