
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/gate.cc" "src/CMakeFiles/qqo_circuit.dir/circuit/gate.cc.o" "gcc" "src/CMakeFiles/qqo_circuit.dir/circuit/gate.cc.o.d"
  "/root/repo/src/circuit/noise_model.cc" "src/CMakeFiles/qqo_circuit.dir/circuit/noise_model.cc.o" "gcc" "src/CMakeFiles/qqo_circuit.dir/circuit/noise_model.cc.o.d"
  "/root/repo/src/circuit/qasm_exporter.cc" "src/CMakeFiles/qqo_circuit.dir/circuit/qasm_exporter.cc.o" "gcc" "src/CMakeFiles/qqo_circuit.dir/circuit/qasm_exporter.cc.o.d"
  "/root/repo/src/circuit/quantum_circuit.cc" "src/CMakeFiles/qqo_circuit.dir/circuit/quantum_circuit.cc.o" "gcc" "src/CMakeFiles/qqo_circuit.dir/circuit/quantum_circuit.cc.o.d"
  "/root/repo/src/circuit/statevector.cc" "src/CMakeFiles/qqo_circuit.dir/circuit/statevector.cc.o" "gcc" "src/CMakeFiles/qqo_circuit.dir/circuit/statevector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
