# Empty compiler generated dependencies file for qqo_common.
# This may be replaced when dependencies are built.
