file(REMOVE_RECURSE
  "libqqo_common.a"
)
