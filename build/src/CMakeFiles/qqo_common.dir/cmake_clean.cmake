file(REMOVE_RECURSE
  "CMakeFiles/qqo_common.dir/common/json.cc.o"
  "CMakeFiles/qqo_common.dir/common/json.cc.o.d"
  "CMakeFiles/qqo_common.dir/common/random.cc.o"
  "CMakeFiles/qqo_common.dir/common/random.cc.o.d"
  "CMakeFiles/qqo_common.dir/common/stats.cc.o"
  "CMakeFiles/qqo_common.dir/common/stats.cc.o.d"
  "CMakeFiles/qqo_common.dir/common/table_printer.cc.o"
  "CMakeFiles/qqo_common.dir/common/table_printer.cc.o.d"
  "libqqo_common.a"
  "libqqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
