# Empty compiler generated dependencies file for qqo_core.
# This may be replaced when dependencies are built.
