file(REMOVE_RECURSE
  "libqqo_core.a"
)
