file(REMOVE_RECURSE
  "CMakeFiles/qqo_core.dir/core/device_model.cc.o"
  "CMakeFiles/qqo_core.dir/core/device_model.cc.o.d"
  "CMakeFiles/qqo_core.dir/core/quantum_optimizer.cc.o"
  "CMakeFiles/qqo_core.dir/core/quantum_optimizer.cc.o.d"
  "CMakeFiles/qqo_core.dir/core/reliability.cc.o"
  "CMakeFiles/qqo_core.dir/core/reliability.cc.o.d"
  "CMakeFiles/qqo_core.dir/core/resource_estimator.cc.o"
  "CMakeFiles/qqo_core.dir/core/resource_estimator.cc.o.d"
  "libqqo_core.a"
  "libqqo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
