# Empty compiler generated dependencies file for qqo_transpile.
# This may be replaced when dependencies are built.
