
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpile/basis_decomposer.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/basis_decomposer.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/basis_decomposer.cc.o.d"
  "/root/repo/src/transpile/coupling_map.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/coupling_map.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/coupling_map.cc.o.d"
  "/root/repo/src/transpile/heavy_hex.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/heavy_hex.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/heavy_hex.cc.o.d"
  "/root/repo/src/transpile/ibm_topologies.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/ibm_topologies.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/ibm_topologies.cc.o.d"
  "/root/repo/src/transpile/layout.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/layout.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/layout.cc.o.d"
  "/root/repo/src/transpile/swap_router.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/swap_router.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/swap_router.cc.o.d"
  "/root/repo/src/transpile/transpiler.cc" "src/CMakeFiles/qqo_transpile.dir/transpile/transpiler.cc.o" "gcc" "src/CMakeFiles/qqo_transpile.dir/transpile/transpiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
