file(REMOVE_RECURSE
  "CMakeFiles/qqo_transpile.dir/transpile/basis_decomposer.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/basis_decomposer.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/coupling_map.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/coupling_map.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/heavy_hex.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/heavy_hex.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/ibm_topologies.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/ibm_topologies.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/layout.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/layout.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/swap_router.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/swap_router.cc.o.d"
  "CMakeFiles/qqo_transpile.dir/transpile/transpiler.cc.o"
  "CMakeFiles/qqo_transpile.dir/transpile/transpiler.cc.o.d"
  "libqqo_transpile.a"
  "libqqo_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
