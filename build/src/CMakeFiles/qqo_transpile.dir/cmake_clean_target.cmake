file(REMOVE_RECURSE
  "libqqo_transpile.a"
)
