file(REMOVE_RECURSE
  "libqqo_io.a"
)
