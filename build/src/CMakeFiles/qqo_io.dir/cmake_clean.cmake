file(REMOVE_RECURSE
  "CMakeFiles/qqo_io.dir/io/workload_io.cc.o"
  "CMakeFiles/qqo_io.dir/io/workload_io.cc.o.d"
  "libqqo_io.a"
  "libqqo_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
