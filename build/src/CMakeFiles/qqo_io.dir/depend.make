# Empty dependencies file for qqo_io.
# This may be replaced when dependencies are built.
