file(REMOVE_RECURSE
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order.cc.o.d"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_baselines.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_baselines.cc.o.d"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_bilp_encoder.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_bilp_encoder.cc.o.d"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_randomized.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_order_randomized.cc.o.d"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_tree.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/join_tree.cc.o.d"
  "CMakeFiles/qqo_joinorder.dir/joinorder/query_graph.cc.o"
  "CMakeFiles/qqo_joinorder.dir/joinorder/query_graph.cc.o.d"
  "libqqo_joinorder.a"
  "libqqo_joinorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_joinorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
