
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joinorder/join_order.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order.cc.o.d"
  "/root/repo/src/joinorder/join_order_baselines.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_baselines.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_baselines.cc.o.d"
  "/root/repo/src/joinorder/join_order_bilp_encoder.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_bilp_encoder.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_bilp_encoder.cc.o.d"
  "/root/repo/src/joinorder/join_order_randomized.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_randomized.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_order_randomized.cc.o.d"
  "/root/repo/src/joinorder/join_tree.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_tree.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/join_tree.cc.o.d"
  "/root/repo/src/joinorder/query_graph.cc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/query_graph.cc.o" "gcc" "src/CMakeFiles/qqo_joinorder.dir/joinorder/query_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_bilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
