file(REMOVE_RECURSE
  "libqqo_joinorder.a"
)
