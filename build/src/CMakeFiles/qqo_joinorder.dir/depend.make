# Empty dependencies file for qqo_joinorder.
# This may be replaced when dependencies are built.
