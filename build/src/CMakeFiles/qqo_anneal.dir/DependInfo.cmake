
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anneal/chimera.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/chimera.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/chimera.cc.o.d"
  "/root/repo/src/anneal/embedding.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/embedding.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/embedding.cc.o.d"
  "/root/repo/src/anneal/embedding_composite.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/embedding_composite.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/embedding_composite.cc.o.d"
  "/root/repo/src/anneal/minor_embedder.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/minor_embedder.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/minor_embedder.cc.o.d"
  "/root/repo/src/anneal/pegasus.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/pegasus.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/pegasus.cc.o.d"
  "/root/repo/src/anneal/simulated_annealer.cc" "src/CMakeFiles/qqo_anneal.dir/anneal/simulated_annealer.cc.o" "gcc" "src/CMakeFiles/qqo_anneal.dir/anneal/simulated_annealer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
