file(REMOVE_RECURSE
  "CMakeFiles/qqo_anneal.dir/anneal/chimera.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/chimera.cc.o.d"
  "CMakeFiles/qqo_anneal.dir/anneal/embedding.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/embedding.cc.o.d"
  "CMakeFiles/qqo_anneal.dir/anneal/embedding_composite.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/embedding_composite.cc.o.d"
  "CMakeFiles/qqo_anneal.dir/anneal/minor_embedder.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/minor_embedder.cc.o.d"
  "CMakeFiles/qqo_anneal.dir/anneal/pegasus.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/pegasus.cc.o.d"
  "CMakeFiles/qqo_anneal.dir/anneal/simulated_annealer.cc.o"
  "CMakeFiles/qqo_anneal.dir/anneal/simulated_annealer.cc.o.d"
  "libqqo_anneal.a"
  "libqqo_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
