file(REMOVE_RECURSE
  "libqqo_anneal.a"
)
