# Empty compiler generated dependencies file for qqo_anneal.
# This may be replaced when dependencies are built.
