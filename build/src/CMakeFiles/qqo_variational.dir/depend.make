# Empty dependencies file for qqo_variational.
# This may be replaced when dependencies are built.
