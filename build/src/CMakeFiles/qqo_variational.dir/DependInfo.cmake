
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variational/adiabatic.cc" "src/CMakeFiles/qqo_variational.dir/variational/adiabatic.cc.o" "gcc" "src/CMakeFiles/qqo_variational.dir/variational/adiabatic.cc.o.d"
  "/root/repo/src/variational/optimizers.cc" "src/CMakeFiles/qqo_variational.dir/variational/optimizers.cc.o" "gcc" "src/CMakeFiles/qqo_variational.dir/variational/optimizers.cc.o.d"
  "/root/repo/src/variational/qaoa.cc" "src/CMakeFiles/qqo_variational.dir/variational/qaoa.cc.o" "gcc" "src/CMakeFiles/qqo_variational.dir/variational/qaoa.cc.o.d"
  "/root/repo/src/variational/variational_solver.cc" "src/CMakeFiles/qqo_variational.dir/variational/variational_solver.cc.o" "gcc" "src/CMakeFiles/qqo_variational.dir/variational/variational_solver.cc.o.d"
  "/root/repo/src/variational/vqe_ansatz.cc" "src/CMakeFiles/qqo_variational.dir/variational/vqe_ansatz.cc.o" "gcc" "src/CMakeFiles/qqo_variational.dir/variational/vqe_ansatz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
