file(REMOVE_RECURSE
  "CMakeFiles/qqo_variational.dir/variational/adiabatic.cc.o"
  "CMakeFiles/qqo_variational.dir/variational/adiabatic.cc.o.d"
  "CMakeFiles/qqo_variational.dir/variational/optimizers.cc.o"
  "CMakeFiles/qqo_variational.dir/variational/optimizers.cc.o.d"
  "CMakeFiles/qqo_variational.dir/variational/qaoa.cc.o"
  "CMakeFiles/qqo_variational.dir/variational/qaoa.cc.o.d"
  "CMakeFiles/qqo_variational.dir/variational/variational_solver.cc.o"
  "CMakeFiles/qqo_variational.dir/variational/variational_solver.cc.o.d"
  "CMakeFiles/qqo_variational.dir/variational/vqe_ansatz.cc.o"
  "CMakeFiles/qqo_variational.dir/variational/vqe_ansatz.cc.o.d"
  "libqqo_variational.a"
  "libqqo_variational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_variational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
