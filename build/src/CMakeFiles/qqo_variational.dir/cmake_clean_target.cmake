file(REMOVE_RECURSE
  "libqqo_variational.a"
)
