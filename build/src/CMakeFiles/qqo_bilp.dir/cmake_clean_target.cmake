file(REMOVE_RECURSE
  "libqqo_bilp.a"
)
