# Empty compiler generated dependencies file for qqo_bilp.
# This may be replaced when dependencies are built.
