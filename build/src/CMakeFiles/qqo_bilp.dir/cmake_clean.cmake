file(REMOVE_RECURSE
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_branch_and_bound.cc.o"
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_branch_and_bound.cc.o.d"
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_problem.cc.o"
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_problem.cc.o.d"
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_to_qubo.cc.o"
  "CMakeFiles/qqo_bilp.dir/bilp/bilp_to_qubo.cc.o.d"
  "libqqo_bilp.a"
  "libqqo_bilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_bilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
