
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bilp/bilp_branch_and_bound.cc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_branch_and_bound.cc.o" "gcc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_branch_and_bound.cc.o.d"
  "/root/repo/src/bilp/bilp_problem.cc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_problem.cc.o" "gcc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_problem.cc.o.d"
  "/root/repo/src/bilp/bilp_to_qubo.cc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_to_qubo.cc.o" "gcc" "src/CMakeFiles/qqo_bilp.dir/bilp/bilp_to_qubo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qqo_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
