# Empty compiler generated dependencies file for fig08_mqo_qaoa_depth.
# This may be replaced when dependencies are built.
