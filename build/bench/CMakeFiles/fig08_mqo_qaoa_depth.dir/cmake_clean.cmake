file(REMOVE_RECURSE
  "CMakeFiles/fig08_mqo_qaoa_depth.dir/fig08_mqo_qaoa_depth.cc.o"
  "CMakeFiles/fig08_mqo_qaoa_depth.dir/fig08_mqo_qaoa_depth.cc.o.d"
  "fig08_mqo_qaoa_depth"
  "fig08_mqo_qaoa_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mqo_qaoa_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
