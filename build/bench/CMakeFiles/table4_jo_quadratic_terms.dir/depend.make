# Empty dependencies file for table4_jo_quadratic_terms.
# This may be replaced when dependencies are built.
