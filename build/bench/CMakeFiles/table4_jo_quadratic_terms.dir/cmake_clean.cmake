file(REMOVE_RECURSE
  "CMakeFiles/table4_jo_quadratic_terms.dir/table4_jo_quadratic_terms.cc.o"
  "CMakeFiles/table4_jo_quadratic_terms.dir/table4_jo_quadratic_terms.cc.o.d"
  "table4_jo_quadratic_terms"
  "table4_jo_quadratic_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_jo_quadratic_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
