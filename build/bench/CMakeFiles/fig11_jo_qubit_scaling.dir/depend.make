# Empty dependencies file for fig11_jo_qubit_scaling.
# This may be replaced when dependencies are built.
