file(REMOVE_RECURSE
  "CMakeFiles/ablation_mqo_encodings.dir/ablation_mqo_encodings.cc.o"
  "CMakeFiles/ablation_mqo_encodings.dir/ablation_mqo_encodings.cc.o.d"
  "ablation_mqo_encodings"
  "ablation_mqo_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mqo_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
