# Empty dependencies file for ablation_mqo_encodings.
# This may be replaced when dependencies are built.
