file(REMOVE_RECURSE
  "CMakeFiles/ablation_adiabatic.dir/ablation_adiabatic.cc.o"
  "CMakeFiles/ablation_adiabatic.dir/ablation_adiabatic.cc.o.d"
  "ablation_adiabatic"
  "ablation_adiabatic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adiabatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
