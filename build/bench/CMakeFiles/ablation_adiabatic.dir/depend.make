# Empty dependencies file for ablation_adiabatic.
# This may be replaced when dependencies are built.
