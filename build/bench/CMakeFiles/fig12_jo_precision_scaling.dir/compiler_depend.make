# Empty compiler generated dependencies file for fig12_jo_precision_scaling.
# This may be replaced when dependencies are built.
