file(REMOVE_RECURSE
  "CMakeFiles/fig12_jo_precision_scaling.dir/fig12_jo_precision_scaling.cc.o"
  "CMakeFiles/fig12_jo_precision_scaling.dir/fig12_jo_precision_scaling.cc.o.d"
  "fig12_jo_precision_scaling"
  "fig12_jo_precision_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_jo_precision_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
