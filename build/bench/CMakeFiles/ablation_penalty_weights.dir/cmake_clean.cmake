file(REMOVE_RECURSE
  "CMakeFiles/ablation_penalty_weights.dir/ablation_penalty_weights.cc.o"
  "CMakeFiles/ablation_penalty_weights.dir/ablation_penalty_weights.cc.o.d"
  "ablation_penalty_weights"
  "ablation_penalty_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_penalty_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
