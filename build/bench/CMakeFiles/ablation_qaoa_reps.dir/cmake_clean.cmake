file(REMOVE_RECURSE
  "CMakeFiles/ablation_qaoa_reps.dir/ablation_qaoa_reps.cc.o"
  "CMakeFiles/ablation_qaoa_reps.dir/ablation_qaoa_reps.cc.o.d"
  "ablation_qaoa_reps"
  "ablation_qaoa_reps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qaoa_reps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
