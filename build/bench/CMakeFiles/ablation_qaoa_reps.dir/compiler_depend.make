# Empty compiler generated dependencies file for ablation_qaoa_reps.
# This may be replaced when dependencies are built.
