# Empty dependencies file for ablation_chain_strength.
# This may be replaced when dependencies are built.
