file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_strength.dir/ablation_chain_strength.cc.o"
  "CMakeFiles/ablation_chain_strength.dir/ablation_chain_strength.cc.o.d"
  "ablation_chain_strength"
  "ablation_chain_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
