# Empty dependencies file for table12_mqo_example.
# This may be replaced when dependencies are built.
