file(REMOVE_RECURSE
  "CMakeFiles/table12_mqo_example.dir/table12_mqo_example.cc.o"
  "CMakeFiles/table12_mqo_example.dir/table12_mqo_example.cc.o.d"
  "table12_mqo_example"
  "table12_mqo_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_mqo_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
