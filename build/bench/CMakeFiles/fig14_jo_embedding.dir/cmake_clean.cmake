file(REMOVE_RECURSE
  "CMakeFiles/fig14_jo_embedding.dir/fig14_jo_embedding.cc.o"
  "CMakeFiles/fig14_jo_embedding.dir/fig14_jo_embedding.cc.o.d"
  "fig14_jo_embedding"
  "fig14_jo_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_jo_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
