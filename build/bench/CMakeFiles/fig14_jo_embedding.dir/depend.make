# Empty dependencies file for fig14_jo_embedding.
# This may be replaced when dependencies are built.
