# Empty compiler generated dependencies file for fig09_mqo_vqe_vs_qaoa.
# This may be replaced when dependencies are built.
