file(REMOVE_RECURSE
  "CMakeFiles/fig09_mqo_vqe_vs_qaoa.dir/fig09_mqo_vqe_vs_qaoa.cc.o"
  "CMakeFiles/fig09_mqo_vqe_vs_qaoa.dir/fig09_mqo_vqe_vs_qaoa.cc.o.d"
  "fig09_mqo_vqe_vs_qaoa"
  "fig09_mqo_vqe_vs_qaoa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mqo_vqe_vs_qaoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
