file(REMOVE_RECURSE
  "CMakeFiles/coherence_thresholds.dir/coherence_thresholds.cc.o"
  "CMakeFiles/coherence_thresholds.dir/coherence_thresholds.cc.o.d"
  "coherence_thresholds"
  "coherence_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
