# Empty dependencies file for coherence_thresholds.
# This may be replaced when dependencies are built.
