file(REMOVE_RECURSE
  "CMakeFiles/table3_join_costs.dir/table3_join_costs.cc.o"
  "CMakeFiles/table3_join_costs.dir/table3_join_costs.cc.o.d"
  "table3_join_costs"
  "table3_join_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_join_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
