# Empty compiler generated dependencies file for table3_join_costs.
# This may be replaced when dependencies are built.
