file(REMOVE_RECURSE
  "CMakeFiles/fig13_jo_circuit_depth.dir/fig13_jo_circuit_depth.cc.o"
  "CMakeFiles/fig13_jo_circuit_depth.dir/fig13_jo_circuit_depth.cc.o.d"
  "fig13_jo_circuit_depth"
  "fig13_jo_circuit_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_jo_circuit_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
