# Empty compiler generated dependencies file for example_annealer_embedding.
# This may be replaced when dependencies are built.
