file(REMOVE_RECURSE
  "CMakeFiles/example_annealer_embedding.dir/annealer_embedding.cpp.o"
  "CMakeFiles/example_annealer_embedding.dir/annealer_embedding.cpp.o.d"
  "annealer_embedding"
  "annealer_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_annealer_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
