file(REMOVE_RECURSE
  "CMakeFiles/example_join_ordering.dir/join_ordering.cpp.o"
  "CMakeFiles/example_join_ordering.dir/join_ordering.cpp.o.d"
  "join_ordering"
  "join_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_join_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
