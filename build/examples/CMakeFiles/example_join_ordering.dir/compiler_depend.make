# Empty compiler generated dependencies file for example_join_ordering.
# This may be replaced when dependencies are built.
