file(REMOVE_RECURSE
  "CMakeFiles/example_adiabatic_evolution.dir/adiabatic_evolution.cpp.o"
  "CMakeFiles/example_adiabatic_evolution.dir/adiabatic_evolution.cpp.o.d"
  "adiabatic_evolution"
  "adiabatic_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adiabatic_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
