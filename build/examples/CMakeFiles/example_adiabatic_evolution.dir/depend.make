# Empty dependencies file for example_adiabatic_evolution.
# This may be replaced when dependencies are built.
