file(REMOVE_RECURSE
  "CMakeFiles/example_mqo_batch.dir/mqo_batch.cpp.o"
  "CMakeFiles/example_mqo_batch.dir/mqo_batch.cpp.o.d"
  "mqo_batch"
  "mqo_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mqo_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
