# Empty dependencies file for example_mqo_batch.
# This may be replaced when dependencies are built.
