# Empty dependencies file for qqo_cli.
# This may be replaced when dependencies are built.
