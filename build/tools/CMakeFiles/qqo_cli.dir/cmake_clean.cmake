file(REMOVE_RECURSE
  "CMakeFiles/qqo_cli.dir/qqo_cli.cc.o"
  "CMakeFiles/qqo_cli.dir/qqo_cli.cc.o.d"
  "qqo"
  "qqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qqo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
