// qqo — command-line front end of the library.
//
//   qqo generate mqo <out.json>   [--queries=N] [--ppq=N] [--seed=N]
//   qqo generate join <out.json>  [--relations=N] [--predicates=N] [--seed=N]
//   qqo mqo <workload.json>       [--backend=exact|sa|qaoa|vqe|adiabatic|annealer]
//   qqo join <graph.json>         [--backend=...] [--thresholds=a,b,...]
//                                 [--precision=P]
//   qqo estimate mqo|join <file>  [--device=mumbai|brooklyn]
//   qqo qasm mqo|join <file>      [--algorithm=qaoa|vqe] [--device=...]
//
// Workload file formats are documented in src/io/workload_io.h.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bilp/bilp_to_qubo.h"
#include "circuit/qasm_exporter.h"
#include "common/table_printer.h"
#include "core/device_model.h"
#include "core/quantum_optimizer.h"
#include "core/reliability.h"
#include "core/resource_estimator.h"
#include "io/workload_io.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "transpile/transpiler.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace {

using namespace qopt;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  qqo generate mqo <out.json>  [--queries=N] [--ppq=N] [--seed=N]\n"
      "  qqo generate join <out.json> [--relations=N] [--predicates=N]"
      " [--seed=N]\n"
      "  qqo mqo <workload.json>      [--backend=exact|sa|qaoa|vqe|adiabatic|annealer]"
      " [--seed=N]\n"
      "  qqo join <graph.json>        [--backend=...] [--thresholds=a,b,..]"
      " [--precision=P]\n"
      "  qqo estimate mqo|join <file> [--device=mumbai|brooklyn]\n"
      "  qqo qasm mqo|join <file>     [--algorithm=qaoa|vqe]\n");
  return 2;
}

/// Parses trailing --key=value flags into a map.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int IntFlag(const std::map<std::string, std::string>& flags,
            const std::string& key, int fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

bool ParseBackend(const std::string& name, Backend* backend) {
  static const std::map<std::string, Backend> kBackends = {
      {"exact", Backend::kExact},
      {"sa", Backend::kSimulatedAnnealing},
      {"qaoa", Backend::kQaoa},
      {"vqe", Backend::kVqe},
      {"adiabatic", Backend::kAdiabatic},
      {"annealer", Backend::kAnnealerEmulation}};
  auto it = kBackends.find(name);
  if (it == kBackends.end()) return false;
  *backend = it->second;
  return true;
}

std::vector<double> ParseThresholds(const std::string& spec) {
  std::vector<double> thresholds;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    thresholds.push_back(std::atof(spec.substr(start, comma - start).c_str()));
    start = comma + 1;
  }
  return thresholds;
}

OptimizerOptions MakeOptions(const std::map<std::string, std::string>& flags,
                             Backend backend) {
  OptimizerOptions options;
  options.backend = backend;
  options.seed = static_cast<std::uint64_t>(IntFlag(flags, "seed", 7));
  options.anneal.num_reads = 50;
  options.anneal.num_sweeps = 2000;
  options.variational.max_iterations = 250;
  options.variational.shots = 4096;
  options.pegasus_m = IntFlag(flags, "pegasus", 4);
  options.embedded.anneal.num_reads = 100;
  options.embedded.anneal.num_sweeps = 4000;
  return options;
}

int RunGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string what = argv[2];
  const std::string path = argv[3];
  const auto flags = ParseFlags(argc, argv, 4);
  if (what == "mqo") {
    MqoGeneratorOptions gen;
    gen.num_queries = IntFlag(flags, "queries", 4);
    gen.plans_per_query = IntFlag(flags, "ppq", 4);
    gen.seed = static_cast<std::uint64_t>(IntFlag(flags, "seed", 1));
    const MqoProblem problem = GenerateMqoProblem(gen);
    if (!SaveMqoProblem(problem, path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote MQO workload: %d queries, %d plans, %d savings -> %s\n",
                problem.NumQueries(), problem.NumPlans(),
                problem.NumSavings(), path.c_str());
    return 0;
  }
  if (what == "join") {
    QueryGeneratorOptions gen;
    gen.num_relations = IntFlag(flags, "relations", 5);
    gen.num_predicates =
        IntFlag(flags, "predicates", gen.num_relations - 1);
    gen.cardinality_min = 10.0;
    gen.cardinality_max = 100000.0;
    gen.selectivity_min = 0.001;
    gen.seed = static_cast<std::uint64_t>(IntFlag(flags, "seed", 1));
    const QueryGraph graph = GenerateRandomQuery(gen);
    if (!SaveQueryGraph(graph, path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote query graph: %d relations, %d predicates -> %s\n",
                graph.NumRelations(), graph.NumPredicates(), path.c_str());
    return 0;
  }
  return Usage();
}

int RunMqo(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto flags = ParseFlags(argc, argv, 3);
  std::string error;
  const auto problem = LoadMqoProblem(argv[2], &error);
  if (!problem.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  Backend backend;
  if (!ParseBackend(FlagOr(flags, "backend", "sa"), &backend)) return Usage();
  const MqoSolveReport report =
      SolveMqo(*problem, MakeOptions(flags, backend));
  std::printf("backend: %s\nqubits: %d\nquadratic terms: %d\n",
              BackendName(backend).c_str(), report.qubits,
              report.quadratic_terms);
  if (!report.valid) {
    std::printf("result: INVALID (backend returned a non-selection)\n");
    return 1;
  }
  std::printf("cost: %.6g\nselection (query: plan):", report.solution.cost);
  for (int q = 0; q < problem->NumQueries(); ++q) {
    std::printf(" %d:%d", q,
                report.solution.selection[static_cast<std::size_t>(q)]);
  }
  std::printf("\n");
  return 0;
}

int RunJoin(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto flags = ParseFlags(argc, argv, 3);
  std::string error;
  const auto graph = LoadQueryGraph(argv[2], &error);
  if (!graph.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  Backend backend;
  if (!ParseBackend(FlagOr(flags, "backend", "sa"), &backend)) return Usage();
  JoinOrderEncoderOptions encoder;
  encoder.thresholds = ParseThresholds(FlagOr(flags, "thresholds", "10,100"));
  encoder.precision_decimals = IntFlag(flags, "precision", 0);
  encoder.safe_slack_bounds = true;
  const JoinOrderSolveReport report =
      SolveJoinOrder(*graph, encoder, MakeOptions(flags, backend));
  std::printf("backend: %s\nqubits: %d\nquadratic terms: %d\n",
              BackendName(backend).c_str(), report.qubits,
              report.quadratic_terms);
  if (!report.valid) {
    std::printf("result: INVALID (backend returned a non-permutation)\n");
    return 1;
  }
  std::printf("C_out cost: %.6g\norder:", report.solution.cost);
  for (int r : report.solution.order) std::printf(" R%d", r);
  std::printf("\n");
  return 0;
}

std::optional<QuboModel> LoadAsQubo(const std::string& what,
                                    const std::string& path,
                                    const std::map<std::string, std::string>&
                                        flags) {
  std::string error;
  if (what == "mqo") {
    const auto problem = LoadMqoProblem(path, &error);
    if (!problem.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return std::nullopt;
    }
    return EncodeMqoAsQubo(*problem).qubo;
  }
  if (what == "join") {
    const auto graph = LoadQueryGraph(path, &error);
    if (!graph.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return std::nullopt;
    }
    JoinOrderEncoderOptions encoder;
    encoder.thresholds =
        ParseThresholds(FlagOr(flags, "thresholds", "10,100"));
    encoder.precision_decimals = IntFlag(flags, "precision", 0);
    return EncodeBilpAsQubo(EncodeJoinOrderAsBilp(*graph, encoder).bilp).qubo;
  }
  return std::nullopt;
}

int RunEstimate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto flags = ParseFlags(argc, argv, 4);
  const auto qubo = LoadAsQubo(argv[2], argv[3], flags);
  if (!qubo.has_value()) return 1;
  const std::string device_name = FlagOr(flags, "device", "mumbai");
  const DeviceModel device =
      device_name == "brooklyn" ? BrooklynDevice() : MumbaiDevice();
  const CouplingMap coupling =
      device_name == "brooklyn" ? MakeBrooklyn65() : MakeMumbai27();
  GateEstimateOptions options;
  options.transpile_trials = IntFlag(flags, "trials", 10);
  const GateResourceEstimate estimate =
      EstimateGateResources(*qubo, coupling, device, options);
  std::printf("device: %s (max reliable depth %d)\n", device.name.c_str(),
              estimate.max_reliable_depth);
  std::printf("logical qubits: %d (device offers %d)\n",
              estimate.logical_qubits, device.num_qubits);
  std::printf("quadratic terms: %d\n", estimate.quadratic_terms);
  std::printf("QAOA depth: %d ideal, %.1f routed -> %s\n",
              estimate.qaoa_depth_ideal, estimate.qaoa_depth_device,
              estimate.qaoa_within_coherence ? "within coherence"
                                             : "EXCEEDS coherence");
  std::printf("VQE depth:  %d ideal, %.1f routed -> %s\n",
              estimate.vqe_depth_ideal, estimate.vqe_depth_device,
              estimate.vqe_within_coherence ? "within coherence"
                                            : "EXCEEDS coherence");
  return 0;
}

int RunQasm(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto flags = ParseFlags(argc, argv, 4);
  const auto qubo = LoadAsQubo(argv[2], argv[3], flags);
  if (!qubo.has_value()) return 1;
  const std::string algorithm = FlagOr(flags, "algorithm", "qaoa");
  QuantumCircuit circuit;
  if (algorithm == "qaoa") {
    circuit = BuildQaoaTemplate(QuboToIsing(*qubo));
  } else if (algorithm == "vqe") {
    circuit = BuildVqeTemplate(qubo->NumVariables(), 3);
  } else {
    return Usage();
  }
  std::fputs(ToQasm2(circuit, /*measure_all=*/true).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return RunGenerate(argc, argv);
  if (command == "mqo") return RunMqo(argc, argv);
  if (command == "join") return RunJoin(argc, argv);
  if (command == "estimate") return RunEstimate(argc, argv);
  if (command == "qasm") return RunQasm(argc, argv);
  return Usage();
}
