// qqo — command-line front end of the library.
//
//   qqo generate mqo <out.json>   [--queries=N] [--ppq=N] [--seed=N]
//   qqo generate join <out.json>  [--relations=N] [--predicates=N] [--seed=N]
//   qqo mqo <workload.json>       [--backend=exact|sa|qaoa|vqe|adiabatic|annealer]
//   qqo join <graph.json>         [--backend=...] [--thresholds=a,b,...]
//                                 [--precision=P]
//   qqo estimate mqo|join <file>  [--device=mumbai|brooklyn]
//   qqo qasm mqo|join <file>      [--algorithm=qaoa|vqe]
//
// Workload file formats are documented in src/io/workload_io.h. All
// external input (flags and files) is validated up front: unknown flags,
// non-numeric or out-of-range values and malformed workload files are
// rejected with a one-line diagnostic and a non-zero exit code — the
// process never aborts on bad input. Exit codes: 0 success, 1 input /
// runtime error, 2 command-line misuse.

#include "qqo_cli.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "bilp/bilp_to_qubo.h"
#include "circuit/qasm_exporter.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/device_model.h"
#include "core/quantum_optimizer.h"
#include "core/resource_estimator.h"
#include "io/workload_io.h"
#include "mqo/mqo_generator.h"
#include "mqo/mqo_qubo_encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qubo/conversions.h"
#include "transpile/ibm_topologies.h"
#include "variational/qaoa.h"
#include "variational/vqe_ansatz.h"

namespace qopt::cli {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  qqo generate mqo <out.json>  [--queries=N] [--ppq=N] [--seed=N]\n"
      "  qqo generate join <out.json> [--relations=N] [--predicates=N]"
      " [--seed=N] [--topology=random|chain|star|cycle|clique]\n"
      "  qqo mqo <workload.json>      [--backend=exact|sa|qaoa|vqe|adiabatic|annealer]"
      " [--dispatch=serial|race] [--decompose=N] [--seed=N] [--pegasus=M]"
      " [--no-fallback] [--timeout-ms=N] [--retries=N]\n"
      "  qqo join <graph.json>        [--backend=...] [--thresholds=a,b,..]"
      " [--precision=P] [--dispatch=serial|race] [--decompose=N] [--seed=N]"
      " [--pegasus=M] [--no-fallback] [--timeout-ms=N] [--retries=N]\n"
      "  qqo estimate mqo|join <file> [--device=mumbai|brooklyn] [--trials=N]"
      " [--thresholds=a,b,..] [--precision=P]\n"
      "  qqo qasm mqo|join <file>     [--algorithm=qaoa|vqe]"
      " [--thresholds=a,b,..] [--precision=P]\n"
      "global flags (any subcommand):\n"
      "  --trace-out=FILE  write a Chrome trace_event JSON of the run\n"
      "  --metrics         print the metrics table after the run\n"
      "environment: QQO_DISPATCH=serial|race sets the default --dispatch;\n"
      "  QQO_DECOMPOSE=N sets the default --decompose (0 off, else max\n"
      "  subproblem size >= 2 for hybrid decomposition)\n");
  return kExitUsage;
}

/// One-line diagnostic on stderr; returns the exit code for convenience
/// (`return Fail(kExitUsage, status);`).
int Fail(int exit_code, const Status& status) {
  std::fprintf(stderr, "qqo: error: %s\n", status.ToString().c_str());
  return exit_code;
}

using FlagMap = std::map<std::string, std::string>;

/// Splits arguments after `first` into --key[=value] flags and bare
/// positionals. Flags are validated against `allowed` (a typo like
/// --sed=5 must not silently run with the default seed), duplicates are
/// rejected, and the caller states how many positionals it expects (so a
/// stray non-flag token is an error rather than silently ignored).
StatusOr<FlagMap> ParseFlags(int argc, const char* const* argv, int first,
                             const std::set<std::string>& allowed,
                             int expected_positionals = 0) {
  FlagMap flags;
  int positionals = 0;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      ++positionals;
      if (positionals > expected_positionals) {
        return InvalidArgumentError(
            StrFormat("unexpected argument \"%s\"", arg.c_str()));
      }
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    if (key.empty()) {
      return InvalidArgumentError(
          StrFormat("malformed flag \"%s\"", arg.c_str()));
    }
    if (allowed.find(key) == allowed.end()) {
      std::string known;
      for (const std::string& name : allowed) {
        known += known.empty() ? "--" : ", --";
        known += name;
      }
      return InvalidArgumentError(StrFormat(
          "unknown flag --%s for this subcommand (known: %s)", key.c_str(),
          known.empty() ? "none" : known.c_str()));
    }
    if (flags.count(key) != 0) {
      return InvalidArgumentError(
          StrFormat("duplicate flag --%s", key.c_str()));
    }
    flags[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
  }
  if (positionals != expected_positionals) {
    return InvalidArgumentError(
        StrFormat("expected %d positional argument(s), got %d",
                  expected_positionals, positionals));
  }
  return flags;
}

std::string FlagOr(const FlagMap& flags, const std::string& key,
                   const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Strict integer flag: full-token std::from_chars parse with range
/// check, so --queries=abc and --seed=9999999999999 are hard errors
/// instead of silently becoming 0 / overflowing.
StatusOr<long long> ParseIntToken(const std::string& key,
                                  const std::string& text, long long min,
                                  long long max) {
  long long value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  // Malformedness is tested before the range: from_chars leaves `value`
  // untouched on invalid input, so the old range-first order reported
  // --retries=abc as "0 out of range" instead of "expected an integer".
  if (ec == std::errc::invalid_argument || ptr != end || text.empty()) {
    return InvalidArgumentError(
        StrFormat("flag --%s: expected an integer, got \"%s\"", key.c_str(),
                  text.c_str()));
  }
  if (ec == std::errc::result_out_of_range || value < min || value > max) {
    return OutOfRangeError(
        StrFormat("flag --%s: value %s is out of range [%lld, %lld]",
                  key.c_str(), text.c_str(), min, max));
  }
  return value;
}

StatusOr<int> IntFlag(const FlagMap& flags, const std::string& key,
                      int fallback, int min, int max) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  QOPT_ASSIGN_OR_RETURN(const long long value,
                        ParseIntToken(key, it->second, min, max));
  return static_cast<int>(value);
}

StatusOr<std::uint64_t> Uint64Flag(const FlagMap& flags,
                                   const std::string& key,
                                   std::uint64_t fallback) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  // Same ordering as ParseIntToken: malformedness before range.
  if (ec == std::errc::invalid_argument || ptr != end || text.empty()) {
    return InvalidArgumentError(StrFormat(
        "flag --%s: expected a non-negative integer, got \"%s\"",
        key.c_str(), text.c_str()));
  }
  if (ec == std::errc::result_out_of_range) {
    return OutOfRangeError(StrFormat(
        "flag --%s: value %s does not fit in 64 bits", key.c_str(),
        text.c_str()));
  }
  return value;
}

/// Decompose block size: 0 (off) or a subproblem cap >= 2. Shared by
/// --decompose and its QQO_DECOMPOSE environment default; `origin` names
/// whichever of the two is being parsed so the diagnostic points at it.
StatusOr<int> ParseDecomposeValue(const std::string& origin,
                                  const std::string& text) {
  long long value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::invalid_argument || ptr != end || text.empty()) {
    return InvalidArgumentError(
        StrFormat("%s: expected an integer, got \"%s\"", origin.c_str(),
                  text.c_str()));
  }
  if (ec == std::errc::result_out_of_range || value < 0 || value == 1 ||
      value > 1000000) {
    return OutOfRangeError(StrFormat(
        "%s: value %s must be 0 (off) or in [2, 1000000]", origin.c_str(),
        text.c_str()));
  }
  return static_cast<int>(value);
}

StatusOr<Backend> ParseBackend(const std::string& name) {
  static const std::map<std::string, Backend> kBackends = {
      {"exact", Backend::kExact},
      {"sa", Backend::kSimulatedAnnealing},
      {"qaoa", Backend::kQaoa},
      {"vqe", Backend::kVqe},
      {"adiabatic", Backend::kAdiabatic},
      {"annealer", Backend::kAnnealerEmulation}};
  auto it = kBackends.find(name);
  if (it == kBackends.end()) {
    return InvalidArgumentError(StrFormat(
        "unknown backend \"%s\" (known: exact, sa, qaoa, vqe, adiabatic, "
        "annealer)",
        name.c_str()));
  }
  return it->second;
}

/// Comma-separated doubles; empty tokens and non-numeric garbage are
/// errors (std::atof would have silently read them as 0).
StatusOr<std::vector<double>> ParseThresholds(const std::string& spec) {
  std::vector<double> thresholds;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (token.empty() || parse_end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
      return InvalidArgumentError(StrFormat(
          "flag --thresholds: expected a comma-separated list of numbers, "
          "got \"%s\"",
          spec.c_str()));
    }
    thresholds.push_back(value);
    if (comma == spec.size()) break;
    start = comma + 1;
  }
  return thresholds;
}

StatusOr<OptimizerOptions> MakeOptions(const FlagMap& flags,
                                       Backend backend) {
  OptimizerOptions options;
  options.backend = backend;
  // --dispatch beats QQO_DISPATCH beats the serial default. The env value
  // was already validated up front in RunQqoCli, so a parse failure here
  // can only come from the flag itself.
  const std::string dispatch_text =
      FlagOr(flags, "dispatch", EnvString("QQO_DISPATCH").value_or("serial"));
  if (StatusOr<DispatchMode> mode = ParseDispatchMode(dispatch_text);
      mode.ok()) {
    options.dispatch = *mode;
  } else {
    return InvalidArgumentError(StrFormat(
        "flag --dispatch: %s", mode.status().message().c_str()));
  }
  // --decompose beats QQO_DECOMPOSE beats off, mirroring --dispatch; the
  // env value was validated up front in RunQqoCli as well.
  const std::string decompose_text =
      FlagOr(flags, "decompose", EnvString("QQO_DECOMPOSE").value_or("0"));
  QOPT_ASSIGN_OR_RETURN(
      options.decompose,
      ParseDecomposeValue("flag --decompose", decompose_text));
  QOPT_ASSIGN_OR_RETURN(options.seed, Uint64Flag(flags, "seed", 7));
  options.anneal.num_reads = 50;
  options.anneal.num_sweeps = 2000;
  options.variational.max_iterations = 250;
  options.variational.shots = 4096;
  QOPT_ASSIGN_OR_RETURN(options.pegasus_m,
                        IntFlag(flags, "pegasus", 4, 2, 16));
  options.embedded.anneal.num_reads = 100;
  options.embedded.anneal.num_sweeps = 4000;
  options.classical_fallback = flags.count("no-fallback") == 0;
  // --timeout-ms=0 is a legal (instantly exhausted) budget: the solve
  // returns kDeadlineExceeded without running any backend.
  if (flags.count("timeout-ms") != 0) {
    QOPT_ASSIGN_OR_RETURN(
        const int timeout_ms,
        IntFlag(flags, "timeout-ms", 0, 0, 24 * 60 * 60 * 1000));
    options.budget.deadline = Deadline::AfterMillis(timeout_ms);
  }
  QOPT_ASSIGN_OR_RETURN(options.budget.retry.max_attempts,
                        IntFlag(flags, "retries", 1, 1, 100));
  options.budget.retry.initial_backoff_ms = 10.0;
  options.budget.retry.seed = options.seed;
  return options;
}

/// Exit code for a failed solve: deadline expiry (and cancellation, its
/// cooperative sibling) gets its own code so scripts can tell "out of
/// time" from "bad input".
int SolveExitCode(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
                 status.code() == StatusCode::kCancelled
             ? kExitDeadline
             : kExitError;
}

void PrintStats(const SolveStats& stats) {
  // attempts (deterministic) goes to stdout with the report; wall-clock
  // timing is a diagnostic and stays off stdout so that report output
  // remains byte-identical at any thread count.
  std::printf("attempts: %d%s\n", stats.attempts,
              stats.timed_out ? " (timed out)" : "");
  if (stats.decompose_rounds > 0) {
    // Round counts and incumbent energies are deterministic (no
    // wall-clock content), so they join the stdout report.
    std::printf("decompose rounds: %d (%d subproblems)\n",
                stats.decompose_rounds, stats.decompose_subproblems);
    std::printf("decompose energies:");
    for (const double energy : stats.decompose_round_energies) {
      std::printf(" %.6g", energy);
    }
    std::printf("\n");
  }
  if (!stats.lanes.empty()) {
    // The lane *set* is deterministic (portfolio of the problem size), so
    // its summary joins the report; per-lane outcome and timing depend on
    // how the race interleaved and stay on stderr with the diagnostics.
    std::printf("race lanes: %d\n", static_cast<int>(stats.lanes.size()));
    for (const RaceLaneStats& lane : stats.lanes) {
      if (lane.incumbent) {
        std::fprintf(stderr,
                     "qqo: race lane %-9s %s%s incumbent %.6g, %.1f ms\n",
                     BackendName(lane.backend).c_str(), lane.outcome.c_str(),
                     lane.won ? " (won)" : ",", lane.incumbent_energy,
                     lane.elapsed_ms);
      } else {
        std::fprintf(stderr, "qqo: race lane %-9s %s, %.1f ms\n",
                     BackendName(lane.backend).c_str(), lane.outcome.c_str(),
                     lane.elapsed_ms);
      }
    }
  }
  std::fprintf(stderr, "qqo: elapsed ms: %.1f\n", stats.elapsed_ms);
}

StatusOr<JoinOrderEncoderOptions> MakeJoinEncoderOptions(
    const FlagMap& flags) {
  JoinOrderEncoderOptions encoder;
  QOPT_ASSIGN_OR_RETURN(encoder.thresholds,
                        ParseThresholds(FlagOr(flags, "thresholds",
                                               "10,100")));
  QOPT_ASSIGN_OR_RETURN(encoder.precision_decimals,
                        IntFlag(flags, "precision", 0, 0, 16));
  encoder.safe_slack_bounds = true;
  return encoder;
}

/// The path positional must not look like a flag (catches
/// `qqo mqo --backend=sa` with the workload file forgotten).
bool LooksLikeFlag(const std::string& arg) {
  return arg.rfind("--", 0) == 0;
}

void PrintDegradation(const std::string& reason, Backend backend_used) {
  std::fprintf(stderr,
               "qqo: warning: degraded to classical fallback \"%s\": %s\n",
               BackendName(backend_used).c_str(), reason.c_str());
}

int RunGenerate(int argc, const char* const* argv) {
  if (argc < 4) return Usage();
  const std::string what = argv[2];
  const std::string path = argv[3];
  if (LooksLikeFlag(what) || LooksLikeFlag(path)) return Usage();
  if (what == "mqo") {
    StatusOr<FlagMap> flags =
        ParseFlags(argc, argv, 4, {"queries", "ppq", "seed"});
    if (!flags.ok()) return Fail(kExitUsage, flags.status());
    MqoGeneratorOptions gen;
    StatusOr<int> queries = IntFlag(*flags, "queries", 4, 1, 1000);
    if (!queries.ok()) return Fail(kExitUsage, queries.status());
    gen.num_queries = *queries;
    StatusOr<int> ppq = IntFlag(*flags, "ppq", 4, 1, 1000);
    if (!ppq.ok()) return Fail(kExitUsage, ppq.status());
    gen.plans_per_query = *ppq;
    StatusOr<std::uint64_t> seed = Uint64Flag(*flags, "seed", 1);
    if (!seed.ok()) return Fail(kExitUsage, seed.status());
    gen.seed = *seed;
    const MqoProblem problem = GenerateMqoProblem(gen);
    if (const Status saved = SaveMqoProblem(problem, path); !saved.ok()) {
      return Fail(kExitError, saved);
    }
    std::printf("wrote MQO workload: %d queries, %d plans, %d savings -> %s\n",
                problem.NumQueries(), problem.NumPlans(),
                problem.NumSavings(), path.c_str());
    return kExitOk;
  }
  if (what == "join") {
    StatusOr<FlagMap> flags = ParseFlags(
        argc, argv, 4, {"relations", "predicates", "seed", "topology"});
    if (!flags.ok()) return Fail(kExitUsage, flags.status());
    const std::string topology = FlagOr(*flags, "topology", "random");
    if (topology != "random" && topology != "chain" && topology != "star" &&
        topology != "cycle" && topology != "clique") {
      return Fail(kExitUsage,
                  InvalidArgumentError(StrFormat(
                      "unknown --topology \"%s\"; expected random, chain, "
                      "star, cycle, or clique",
                      topology.c_str())));
    }
    StatusOr<int> relations = IntFlag(*flags, "relations", 5, 2, 1000);
    if (!relations.ok()) return Fail(kExitUsage, relations.status());
    StatusOr<std::uint64_t> seed = Uint64Flag(*flags, "seed", 1);
    if (!seed.ok()) return Fail(kExitUsage, seed.status());
    if (topology != "random" && flags->count("predicates") > 0) {
      return Fail(kExitUsage,
                  InvalidArgumentError(StrFormat(
                      "--predicates only applies to --topology=random; "
                      "topology \"%s\" fixes the predicate set",
                      topology.c_str())));
    }
    QueryGraph graph({1.0});
    if (topology == "random") {
      QueryGeneratorOptions gen;
      gen.num_relations = *relations;
      StatusOr<int> predicates =
          IntFlag(*flags, "predicates", gen.num_relations - 1,
                  gen.num_relations - 1,
                  gen.num_relations * (gen.num_relations - 1) / 2);
      if (!predicates.ok()) return Fail(kExitUsage, predicates.status());
      gen.num_predicates = *predicates;
      gen.cardinality_min = 10.0;
      gen.cardinality_max = 100000.0;
      gen.selectivity_min = 0.001;
      gen.seed = *seed;
      graph = GenerateRandomQuery(gen);
    } else {
      // Fixed-topology stressors for the decomposition sweeps share one
      // uniform cardinality and selectivity so the shape, not the weights,
      // drives the QUBO structure.
      const double cardinality = 1000.0;
      const double selectivity = 0.1;
      if (topology == "chain") {
        graph = GenerateChainQuery(*relations, cardinality, selectivity,
                                   *seed);
      } else if (topology == "star") {
        graph = GenerateStarQuery(*relations, cardinality, selectivity,
                                  *seed);
      } else if (topology == "cycle") {
        graph = GenerateCycleQuery(*relations, cardinality, selectivity,
                                   *seed);
      } else {
        graph = GenerateCliqueQuery(*relations, cardinality, selectivity,
                                    *seed);
      }
    }
    if (const Status saved = SaveQueryGraph(graph, path); !saved.ok()) {
      return Fail(kExitError, saved);
    }
    std::printf("wrote query graph: %d relations, %d predicates -> %s\n",
                graph.NumRelations(), graph.NumPredicates(), path.c_str());
    return kExitOk;
  }
  return Usage();
}

int RunMqo(int argc, const char* const* argv) {
  if (argc < 3 || LooksLikeFlag(argv[2])) return Usage();
  StatusOr<FlagMap> flags =
      ParseFlags(argc, argv, 3,
                 {"backend", "dispatch", "decompose", "seed", "pegasus",
                  "no-fallback", "timeout-ms", "retries"});
  if (!flags.ok()) return Fail(kExitUsage, flags.status());
  // Validate every flag value before touching the file: a usage error is
  // diagnosed the same way whether or not the workload path exists.
  StatusOr<Backend> backend = ParseBackend(FlagOr(*flags, "backend", "sa"));
  if (!backend.ok()) return Fail(kExitUsage, backend.status());
  StatusOr<OptimizerOptions> options = MakeOptions(*flags, *backend);
  if (!options.ok()) return Fail(kExitUsage, options.status());
  StatusOr<MqoProblem> problem = LoadMqoProblem(argv[2]);
  if (!problem.ok()) return Fail(kExitError, problem.status());
  StatusOr<MqoSolveReport> solved = TrySolveMqo(*problem, *options);
  if (!solved.ok()) return Fail(SolveExitCode(solved.status()),
                                solved.status());
  const MqoSolveReport& report = *solved;
  if (report.degraded) {
    PrintDegradation(report.degradation_reason, report.backend_used);
  }
  std::printf("backend: %s%s\nqubits: %d\nquadratic terms: %d\n",
              BackendName(report.backend_used).c_str(),
              report.degraded ? " (degraded)" : "", report.qubits,
              report.quadratic_terms);
  PrintStats(report.stats);
  if (!report.valid) {
    std::printf("result: INVALID (backend returned a non-selection)\n");
    return kExitError;
  }
  std::printf("cost: %.6g\nselection (query: plan):", report.solution.cost);
  for (int q = 0; q < problem->NumQueries(); ++q) {
    std::printf(" %d:%d", q,
                report.solution.selection[static_cast<std::size_t>(q)]);
  }
  std::printf("\n");
  return kExitOk;
}

int RunJoin(int argc, const char* const* argv) {
  if (argc < 3 || LooksLikeFlag(argv[2])) return Usage();
  StatusOr<FlagMap> flags =
      ParseFlags(argc, argv, 3,
                 {"backend", "dispatch", "decompose", "seed", "pegasus",
                  "thresholds", "precision", "no-fallback", "timeout-ms",
                  "retries"});
  if (!flags.ok()) return Fail(kExitUsage, flags.status());
  StatusOr<Backend> backend = ParseBackend(FlagOr(*flags, "backend", "sa"));
  if (!backend.ok()) return Fail(kExitUsage, backend.status());
  StatusOr<JoinOrderEncoderOptions> encoder = MakeJoinEncoderOptions(*flags);
  if (!encoder.ok()) return Fail(kExitUsage, encoder.status());
  StatusOr<OptimizerOptions> options = MakeOptions(*flags, *backend);
  if (!options.ok()) return Fail(kExitUsage, options.status());
  StatusOr<QueryGraph> graph = LoadQueryGraph(argv[2]);
  if (!graph.ok()) return Fail(kExitError, graph.status());
  StatusOr<JoinOrderSolveReport> solved =
      TrySolveJoinOrder(*graph, *encoder, *options);
  if (!solved.ok()) return Fail(SolveExitCode(solved.status()),
                                solved.status());
  const JoinOrderSolveReport& report = *solved;
  if (report.degraded) {
    PrintDegradation(report.degradation_reason, report.backend_used);
  }
  std::printf("backend: %s%s\nqubits: %d\nquadratic terms: %d\n",
              BackendName(report.backend_used).c_str(),
              report.degraded ? " (degraded)" : "", report.qubits,
              report.quadratic_terms);
  PrintStats(report.stats);
  if (!report.valid) {
    std::printf("result: INVALID (backend returned a non-permutation)\n");
    return kExitError;
  }
  std::printf("C_out cost: %.6g\norder:", report.solution.cost);
  for (int r : report.solution.order) std::printf(" R%d", r);
  std::printf("\n");
  return kExitOk;
}

StatusOr<QuboModel> LoadAsQubo(const std::string& what,
                               const std::string& path,
                               const FlagMap& flags) {
  if (what == "mqo") {
    QOPT_ASSIGN_OR_RETURN(const MqoProblem problem, LoadMqoProblem(path));
    QOPT_ASSIGN_OR_RETURN(const MqoQuboEncoding encoding,
                          TryEncodeMqoAsQubo(problem));
    return encoding.qubo;
  }
  if (what == "join") {
    QOPT_ASSIGN_OR_RETURN(const QueryGraph graph, LoadQueryGraph(path));
    QOPT_ASSIGN_OR_RETURN(const JoinOrderEncoderOptions encoder,
                          MakeJoinEncoderOptions(flags));
    QOPT_ASSIGN_OR_RETURN(const JoinOrderEncoding encoding,
                          TryEncodeJoinOrderAsBilp(graph, encoder));
    return EncodeBilpAsQubo(encoding.bilp).qubo;
  }
  return InvalidArgumentError(
      StrFormat("unknown workload kind \"%s\" (known: mqo, join)",
                what.c_str()));
}

int RunEstimate(int argc, const char* const* argv) {
  if (argc < 4 || LooksLikeFlag(argv[2]) || LooksLikeFlag(argv[3])) {
    return Usage();
  }
  StatusOr<FlagMap> flags = ParseFlags(
      argc, argv, 4, {"device", "trials", "thresholds", "precision"});
  if (!flags.ok()) return Fail(kExitUsage, flags.status());
  StatusOr<QuboModel> qubo = LoadAsQubo(argv[2], argv[3], *flags);
  if (!qubo.ok()) return Fail(kExitError, qubo.status());
  const std::string device_name = FlagOr(*flags, "device", "mumbai");
  if (device_name != "mumbai" && device_name != "brooklyn") {
    return Fail(kExitUsage,
                InvalidArgumentError(StrFormat(
                    "unknown device \"%s\" (known: mumbai, brooklyn)",
                    device_name.c_str())));
  }
  const DeviceModel device =
      device_name == "brooklyn" ? BrooklynDevice() : MumbaiDevice();
  const CouplingMap coupling =
      device_name == "brooklyn" ? MakeBrooklyn65() : MakeMumbai27();
  GateEstimateOptions options;
  StatusOr<int> trials = IntFlag(*flags, "trials", 10, 1, 1000);
  if (!trials.ok()) return Fail(kExitUsage, trials.status());
  options.transpile_trials = *trials;
  const GateResourceEstimate estimate =
      EstimateGateResources(*qubo, coupling, device, options);
  std::printf("device: %s (max reliable depth %d)\n", device.name.c_str(),
              estimate.max_reliable_depth);
  std::printf("logical qubits: %d (device offers %d)\n",
              estimate.logical_qubits, device.num_qubits);
  std::printf("quadratic terms: %d\n", estimate.quadratic_terms);
  std::printf("QAOA depth: %d ideal, %.1f routed -> %s\n",
              estimate.qaoa_depth_ideal, estimate.qaoa_depth_device,
              estimate.qaoa_within_coherence ? "within coherence"
                                             : "EXCEEDS coherence");
  std::printf("VQE depth:  %d ideal, %.1f routed -> %s\n",
              estimate.vqe_depth_ideal, estimate.vqe_depth_device,
              estimate.vqe_within_coherence ? "within coherence"
                                            : "EXCEEDS coherence");
  return kExitOk;
}

int RunQasm(int argc, const char* const* argv) {
  if (argc < 4 || LooksLikeFlag(argv[2]) || LooksLikeFlag(argv[3])) {
    return Usage();
  }
  StatusOr<FlagMap> flags =
      ParseFlags(argc, argv, 4, {"algorithm", "thresholds", "precision"});
  if (!flags.ok()) return Fail(kExitUsage, flags.status());
  StatusOr<QuboModel> qubo = LoadAsQubo(argv[2], argv[3], *flags);
  if (!qubo.ok()) return Fail(kExitError, qubo.status());
  const std::string algorithm = FlagOr(*flags, "algorithm", "qaoa");
  QuantumCircuit circuit;
  if (algorithm == "qaoa") {
    circuit = BuildQaoaTemplate(QuboToIsing(*qubo));
  } else if (algorithm == "vqe") {
    circuit = BuildVqeTemplate(qubo->NumVariables(), 3);
  } else {
    return Fail(kExitUsage,
                InvalidArgumentError(StrFormat(
                    "unknown algorithm \"%s\" (known: qaoa, vqe)",
                    algorithm.c_str())));
  }
  std::fputs(ToQasm2(circuit, /*measure_all=*/true).c_str(), stdout);
  return kExitOk;
}

int Dispatch(int argc, const char* const* argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return RunGenerate(argc, argv);
  if (command == "mqo") return RunMqo(argc, argv);
  if (command == "join") return RunJoin(argc, argv);
  if (command == "estimate") return RunEstimate(argc, argv);
  if (command == "qasm") return RunQasm(argc, argv);
  std::fprintf(stderr, "qqo: error: unknown command \"%s\"\n",
               command.c_str());
  return Usage();
}

/// Emits the metrics tables after a --metrics run. Stable metrics are part
/// of the deterministic report and go to stdout; scheduling-class metrics
/// (threadpool.*) legitimately vary with QQO_THREADS and stay on stderr,
/// keeping stdout byte-identical at any thread count.
void PrintMetricsTables() {
  const obs::Metrics& metrics = obs::Metrics::Instance();
  std::fputs(metrics.TableString(/*include_scheduling=*/false).c_str(),
             stdout);
  TablePrinter scheduling({"metric (scheduling)", "count", "value"});
  bool any = false;
  for (const obs::Metrics::Row& row :
       metrics.Snapshot(/*include_scheduling=*/true)) {
    if (!row.scheduling) continue;
    any = true;
    scheduling.AddRow({row.name, StrFormat("%lld", row.count),
                       StrFormat("%lld", row.sum)});
  }
  if (any) scheduling.Print(stderr);
}

}  // namespace

int RunQqoCli(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return RunQqoCli(args);
}

int RunQqoCli(const std::vector<std::string>& args) {
  // Environment knobs are validated before any work runs: a typo in
  // QQO_THREADS or QQO_FAULTS is command-line misuse (exit 2), never a
  // silent fallback to defaults.
  if (StatusOr<int> pool = ThreadPool::PoolSizeFromEnvOrStatus();
      !pool.ok()) {
    return Fail(kExitUsage, pool.status());
  }
  if (Status faults = FaultInjection::EnvSpecStatus(); !faults.ok()) {
    return Fail(kExitUsage, faults);
  }
  if (std::optional<std::string> dispatch_env = EnvString("QQO_DISPATCH")) {
    if (StatusOr<DispatchMode> mode = ParseDispatchMode(*dispatch_env);
        !mode.ok()) {
      return Fail(kExitUsage,
                  InvalidArgumentError(StrFormat(
                      "QQO_DISPATCH: %s", mode.status().message().c_str())));
    }
  }
  if (std::optional<std::string> decompose_env = EnvString("QQO_DECOMPOSE")) {
    if (StatusOr<int> value =
            ParseDecomposeValue("QQO_DECOMPOSE", *decompose_env);
        !value.ok()) {
      return Fail(kExitUsage, value.status());
    }
  }

  // The observability flags are global: strip them here so every
  // subcommand accepts them without widening its own allowlist.
  std::string trace_out;
  bool want_metrics = false;
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (const std::string& arg : args) {
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
      if (trace_out.empty()) {
        return Fail(kExitUsage, InvalidArgumentError(
                                    "flag --trace-out: expected a file path"));
      }
      continue;
    }
    if (arg == "--trace-out") {
      return Fail(kExitUsage,
                  InvalidArgumentError("flag --trace-out: expected =FILE"));
    }
    if (arg == "--metrics") {
      want_metrics = true;
      continue;
    }
    rest.push_back(arg);
  }

  if (!trace_out.empty()) {
    obs::Tracer::Instance().Reset();
    obs::Tracer::Instance().Enable();
  }
  if (want_metrics) {
    obs::Metrics::Instance().Reset();
    obs::Metrics::Instance().Enable();
  }

  std::vector<const char*> argv;
  argv.reserve(rest.size());
  for (const std::string& arg : rest) argv.push_back(arg.c_str());
  int code = Dispatch(static_cast<int>(argv.size()), argv.data());

  if (!trace_out.empty()) {
    obs::Tracer::Instance().Disable();
    const std::string trace_json =
        obs::Tracer::Instance().ChromeTraceJson().Dump(1);
    if (!WriteStringToFile(trace_out, trace_json)) {
      const Status failed = InternalError(
          StrFormat("cannot write trace file \"%s\"", trace_out.c_str()));
      if (code == kExitOk) code = kExitError;
      Fail(code, failed);
    } else {
      std::fprintf(stderr, "qqo: trace written to %s\n", trace_out.c_str());
    }
  }
  if (want_metrics) {
    obs::Metrics::Instance().Disable();
    PrintMetricsTables();
  }
  return code;
}

}  // namespace qopt::cli
