#include "qqo_cli.h"

int main(int argc, char** argv) { return qopt::cli::RunQqoCli(argc, argv); }
