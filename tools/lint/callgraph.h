#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace qopt::lint {

/// Cross-translation-unit program index behind the qqo-deadline-plumbing,
/// qqo-lock-discipline, and qqo-pool-reentrancy rules (see DESIGN.md
/// "Static analysis & code contracts"). Built in the same two passes as the
/// status-discard symbol harvest: pass 1 feeds every file through AddFile,
/// Finalize resolves the global views, and pass 2 (LintContent) pulls the
/// precomputed per-file findings so NOLINT suppression applies normally.
///
/// The model is deliberately approximate — token patterns, not semantics:
///   - calls resolve by unqualified name to every harvested signature with
///     that name (no overload resolution, no templates, no virtual dispatch);
///   - mutexes are identified by their receiver chain text within one file
///     ("state_mutex_", "state.done_mutex"); there is no aliasing across
///     objects or translation units;
///   - code inside a lambda body is deferred: it is not "under" the locks of
///     the function that builds the lambda, and calls made from a lambda do
///     not count toward the builder's own transitive blocking summary.

/// One parameter of a harvested function signature. `type_idents` holds
/// every identifier token of the parameter piece in order ("const",
/// "Deadline", "d"); punctuation is dropped and default arguments are
/// stripped. The last identifier doubles as `name` — for an unnamed
/// parameter that leaves the type's own name there, which is exactly what
/// the budget-overload scan needs.
struct ParamInfo {
  std::vector<std::string> type_idents;
  std::string name;
};

/// A function signature harvested from a declaration or a definition.
struct SignatureInfo {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<ParamInfo> params;
  bool is_definition = false;
};

/// A call site inside a function definition body: callee name plus every
/// identifier appearing in the argument list (member chains flattened, so
/// `Solve(qubo, options.anneal)` captures {qubo, options, anneal}).
struct CallInfo {
  std::string callee;
  int line = 0;
  std::vector<std::string> arg_idents;
  /// True when the call sits inside a lambda body within this definition:
  /// it runs later (possibly on the pool), not on the caller's stack.
  bool deferred = false;
};

/// A function definition with the body-derived facts the cross-TU rules
/// consume.
struct DefinitionInfo {
  SignatureInfo signature;
  std::vector<CallInfo> calls;
  /// Mutex chains acquired by guards in the body itself (lambda bodies
  /// excluded — a lock taken by a submitted task is not taken here).
  std::set<std::string> acquires;
  /// True when the body itself blocks: ParallelFor*/WaitFor/DispatchRace,
  /// a condition-variable wait, or a future .get().
  bool blocks_directly = false;

  /// A budget-charging statement: `target` starts carrying the budget when
  /// the right-hand side visibly involves one — a budget-named identifier
  /// (deadline/token/budget/cancel) or a budget-typed parameter. Harvested
  /// from assignments and initializations, so struct-member forwarding
  /// (`anneal.deadline = Compose(...)`) marks `anneal` as a carrier.
  /// Derived values (`int p = options.qaoa_reps;`) do NOT charge: only
  /// member writes (`member == true`) may chain through already-charged
  /// locals, otherwise everything computed from an options struct would
  /// count as forwarding the budget.
  struct Charge {
    std::string target;
    std::vector<std::string> rhs_idents;
    bool member = false;  ///< LHS was a member write (x.field = ...).
  };
  std::vector<Charge> charges;
};

class ProgramIndex {
 public:
  /// Pass 1: lex and parse one file into the index. `path` must be unique
  /// across calls (it keys the per-file views).
  void AddFile(const std::string& path, const std::string& content);

  /// Resolves the global views — budget-bearing struct fixed point,
  /// transitive acquires*/blocks* summaries over the call graph, the
  /// mutex-order graph and its cycles — and precomputes the per-file
  /// findings for the three cross-TU rules. Call once, after every AddFile.
  void Finalize();

  /// Raw cross-TU findings for `path`: rule-tagged but unfiltered.
  /// LintContent applies rule gating and NOLINT suppression on top.
  const std::vector<Finding>& FindingsFor(const std::string& path) const;

  /// True for Deadline/CancelToken/SolveBudget and for any harvested struct
  /// that (transitively) holds a member of a budget type.
  bool IsBudgetType(const std::string& type_ident) const;

  /// True when any harvested signature of `function_name` has a parameter
  /// of a budget type — the callee side of qqo-deadline-plumbing.
  bool HasBudgetOverload(const std::string& function_name) const;

  /// Every harvested signature with this unqualified name, ordered by
  /// (file, line). Pointers remain valid while the index lives.
  std::vector<const SignatureInfo*> SignaturesOf(const std::string& name) const;

  /// The function definitions harvested from `path`, in source order.
  const std::vector<DefinitionInfo>& DefinitionsIn(
      const std::string& path) const;

 private:
  /// A nested lock acquisition: `inner` taken while `outer` is held, both
  /// named by their file-local chains.
  struct NestedLock {
    std::string outer;
    std::string inner;
    int line = 0;
  };

  /// A call made while at least one lock is held (anywhere in the file,
  /// function bodies and test bodies alike).
  struct CallUnderLock {
    std::string callee;
    int line = 0;
    std::vector<std::string> held;  ///< chains, innermost-last
  };

  struct FilePack {
    std::vector<DefinitionInfo> defs;
    std::vector<SignatureInfo> decls;  ///< non-definition declarations
    /// struct/class name -> identifier tokens of its data-member types.
    std::map<std::string, std::set<std::string>> struct_members;
    std::vector<NestedLock> nested_locks;
    std::vector<CallUnderLock> calls_under_lock;
    /// Findings computable from this file alone (pool reentrancy,
    /// recursive locking, direct blocking under a lock).
    std::vector<Finding> local;
  };

  void CheckDeadlinePlumbing();
  void CheckLockDiscipline();

  std::map<std::string, FilePack> files_;
  std::set<std::string> budget_types_;
  std::set<std::string> budget_overloads_;
  std::map<std::string, std::vector<const SignatureInfo*>> by_name_;
  std::map<std::string, std::vector<Finding>> findings_;
  bool finalized_ = false;
};

}  // namespace qopt::lint
