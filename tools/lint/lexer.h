#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qopt::lint {

/// Minimal token stream for the qqo_lint rules. The lexer understands just
/// enough C++ to be trustworthy at the token level: comments, string/char
/// literals (including raw strings), preprocessor logical lines (with
/// backslash continuations) and identifiers/numbers/punctuation. It does
/// not expand macros or parse declarations — the rules work on token
/// patterns plus the scope classification below.
enum class TokKind {
  kIdent,   ///< Identifiers and keywords ("for", "deadline", "rand", ...).
  kNumber,  ///< Numeric literal (verbatim text, including suffixes).
  kString,  ///< String literal, quotes included; raw strings collapsed.
  kChar,    ///< Character literal, quotes included.
  kPunct,   ///< One punctuator per token; "::", "->", "<<", ">>" merge.
};

struct Tok {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character.
};

/// A comment, with the 1-based line where it starts. Block comments keep
/// their full text (newlines included); NOLINT / QQO_LOOP markers are
/// parsed out of these.
struct Comment {
  int line = 0;
  std::string text;  ///< Includes the // or /* */ delimiters.
};

/// A preprocessor logical line ("#include <vector>", "#pragma once", ...),
/// continuations joined, comments stripped, inner whitespace collapsed to
/// single spaces.
struct Directive {
  int line = 0;
  std::string text;
};

struct LexResult {
  std::vector<Tok> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
  int num_lines = 0;
};

/// Lexes `source`. Never fails: unterminated literals/comments are closed
/// at end of file, unknown bytes become single-character punctuators.
LexResult Lex(const std::string& source);

/// What kind of scope a `{` opened, classified from the tokens before it.
enum class ScopeKind {
  kNamespace,  ///< namespace [name] {
  kType,       ///< class/struct/union/enum ... {
  kBlock,      ///< Function body, lambda, control-flow block, initializer.
};

/// Skips a balanced template-argument list; `i` points at the "<". Returns
/// the index just past the matching ">". The lexer emits ">>" as a single
/// token, which closes two levels. A ";" inside an unbalanced "<" means it
/// was a comparison, not a template list; the walk bails out there.
std::size_t SkipAngles(const std::vector<Tok>& toks, std::size_t i);

/// Skips a balanced parenthesized group; `i` points at the "(". Returns
/// the index just past the matching ")".
std::size_t SkipParens(const std::vector<Tok>& toks, std::size_t i);

/// Skips a balanced braced group; `i` points at the "{". Returns the index
/// just past the matching "}".
std::size_t SkipBraces(const std::vector<Tok>& toks, std::size_t i);

/// For each token index, the innermost enclosing scope chain. Used by the
/// header-hygiene rule to tell namespace-scope `using namespace` apart
/// from one inside a function body.
class ScopeMap {
 public:
  explicit ScopeMap(const std::vector<Tok>& tokens);

  /// True if token `i` sits inside at least one kBlock scope (i.e. inside
  /// a function body or other statement block).
  bool InsideBlock(std::size_t i) const { return inside_block_[i]; }

 private:
  std::vector<bool> inside_block_;
};

}  // namespace qopt::lint
