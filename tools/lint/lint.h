#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace qopt::lint {

/// Rule identifiers. Suppress a finding in source with a NOLINT comment
/// naming one or more rule ids, e.g. `(qqo-determinism): <justification>`
/// after the NOLINT keyword on the offending line (or the NEXTLINE variant
/// on the line before). A suppression without a justification, naming an
/// unknown rule, or naming kNolintRule itself is a finding (kNolintRule).
inline constexpr char kDeterminismRule[] = "qqo-determinism";
inline constexpr char kOrderedOutputRule[] = "qqo-ordered-output";
inline constexpr char kDeadlineCoverageRule[] = "qqo-deadline-coverage";
inline constexpr char kObsCoverageRule[] = "qqo-obs-coverage";
inline constexpr char kHotLoopAllocRule[] = "qqo-hot-loop-alloc";
inline constexpr char kStatusDiscardRule[] = "qqo-status-discard";
inline constexpr char kHeaderHygieneRule[] = "qqo-header-hygiene";
inline constexpr char kDeadlinePlumbingRule[] = "qqo-deadline-plumbing";
inline constexpr char kLockDisciplineRule[] = "qqo-lock-discipline";
inline constexpr char kPoolReentrancyRule[] = "qqo-pool-reentrancy";
inline constexpr char kNolintRule[] = "qqo-nolint";

/// All checkable rules, in report order (kNolintRule is always active —
/// it polices the suppression mechanism itself and cannot be suppressed).
std::vector<std::string> AllRules();

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Per-directory policy, read from the nearest `.qqo-lint-policy` file in
/// the linted file's directory or any parent. Line-oriented; '#' starts a
/// comment. Recognized keys:
///   result-path        — this directory's files produce results or
///                        serialize output: qqo-ordered-output applies
///   no-result-path     — overrides a parent's result-path
struct Policy {
  bool result_path = false;
};

struct Options {
  /// Rules to run (rule ids without suppression pseudo-rule). Empty = all.
  std::vector<std::string> rules;
  /// Path substrings to skip when expanding directories.
  std::vector<std::string> excludes;
  /// Name of the per-directory policy file.
  std::string policy_filename = ".qqo-lint-policy";
  bool IsRuleEnabled(const std::string& rule) const;
};

/// Functions returning Status / StatusOr, harvested from declarations in
/// the linted files. The status-discard rule flags bare-expression calls
/// to these names. A name that is ALSO declared with a void return
/// anywhere (e.g. ThreadPool::ParallelFor's deadline-free convenience
/// overload) is ambiguous at the token level and is excluded — the
/// [[nodiscard]] on Status still covers the compiled overload.
class SymbolTable {
 public:
  /// Scans `content` for `Status Name(` / `StatusOr<...> Name(`
  /// declarations (and `void Name(` overloads) and records each Name.
  void HarvestFrom(const std::string& content);
  void Add(const std::string& name) { status_functions_.insert(name); }
  bool Contains(const std::string& name) const {
    return status_functions_.count(name) > 0 &&
           void_overloads_.count(name) == 0;
  }
  const std::set<std::string>& functions() const { return status_functions_; }

 private:
  std::set<std::string> status_functions_;
  std::set<std::string> void_overloads_;
};

/// Cross-TU program index (declaration index + approximate call graph)
/// behind qqo-deadline-plumbing / qqo-lock-discipline / qqo-pool-reentrancy.
/// Defined in lint/callgraph.h.
class ProgramIndex;

/// Lints one file's contents. `path` is used for reporting, for the
/// determinism-rule exemption of src/common/random.*, and for deciding
/// whether the header-hygiene rule applies (.h files only). When `program`
/// is non-null it must be Finalize()d; its per-file findings for `path`
/// join the token-rule findings before rule gating and NOLINT suppression.
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const Policy& policy,
                                 const SymbolTable& symbols,
                                 const Options& options,
                                 const ProgramIndex* program = nullptr);

/// Expands files/directories (recursing into *.h/*.hpp/*.cc/*.cpp),
/// harvests Status symbols from every file, reads per-directory policies,
/// and lints each file. Returns false if a path could not be read (usage
/// error); findings are appended either way.
bool LintPaths(const std::vector<std::string>& paths, const Options& options,
               std::vector<Finding>* findings, std::string* error);

/// The qqo_lint CLI: returns 0 when clean, 1 when there are findings,
/// 2 on usage errors. Writes findings to `out`, diagnostics to `err`.
int RunLintMain(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace qopt::lint
