#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace qopt::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the source with line accounting shared by every scanner.
struct Cursor {
  const std::string& src;
  std::size_t pos = 0;
  int line = 1;

  bool AtEnd() const { return pos >= src.size(); }
  char Peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  char Advance() {
    char c = src[pos++];
    if (c == '\n') ++line;
    return c;
  }
};

/// Scans a // or /* */ comment starting at the cursor (which sits on '/').
Comment ScanComment(Cursor* cur) {
  Comment comment;
  comment.line = cur->line;
  comment.text.push_back(cur->Advance());  // '/'
  const char second = cur->Peek();
  comment.text.push_back(cur->Advance());  // '/' or '*'
  if (second == '/') {
    while (!cur->AtEnd() && cur->Peek() != '\n') {
      comment.text.push_back(cur->Advance());
    }
  } else {  // block comment
    while (!cur->AtEnd()) {
      if (cur->Peek() == '*' && cur->Peek(1) == '/') {
        comment.text.push_back(cur->Advance());
        comment.text.push_back(cur->Advance());
        break;
      }
      comment.text.push_back(cur->Advance());
    }
  }
  return comment;
}

/// Scans a quoted literal (the cursor sits on the opening quote). Handles
/// backslash escapes; unterminated literals end at newline/EOF.
std::string ScanQuoted(Cursor* cur, char quote) {
  std::string text;
  text.push_back(cur->Advance());
  while (!cur->AtEnd()) {
    const char c = cur->Peek();
    if (c == '\\' && cur->pos + 1 < cur->src.size()) {
      text.push_back(cur->Advance());
      text.push_back(cur->Advance());
      continue;
    }
    text.push_back(cur->Advance());
    if (c == quote || c == '\n') break;
  }
  return text;
}

/// Scans a raw string literal; the cursor sits on the '"' after R. Returns
/// the literal collapsed to an empty string token ("") — the rules never
/// look inside string contents.
void SkipRawString(Cursor* cur) {
  cur->Advance();  // '"'
  std::string delim;
  while (!cur->AtEnd() && cur->Peek() != '(') delim.push_back(cur->Advance());
  const std::string closer = ")" + delim + "\"";
  while (!cur->AtEnd()) {
    if (cur->src.compare(cur->pos, closer.size(), closer) == 0) {
      for (std::size_t i = 0; i < closer.size(); ++i) cur->Advance();
      return;
    }
    cur->Advance();
  }
}

/// Scans a preprocessor logical line starting at '#'. Joins backslash
/// continuations and strips comments; inner runs of whitespace collapse to
/// one space. Stripped comments are still recorded in `comments` so a
/// NOLINT on a directive line (e.g. a suppressed #include) suppresses.
Directive ScanDirective(Cursor* cur, std::vector<Comment>* comments) {
  Directive directive;
  directive.line = cur->line;
  bool pending_space = false;
  while (!cur->AtEnd()) {
    const char c = cur->Peek();
    if (c == '\n') break;
    if (c == '\\' && cur->Peek(1) == '\n') {
      cur->Advance();
      cur->Advance();
      pending_space = true;
      continue;
    }
    if (c == '/' && (cur->Peek(1) == '/' || cur->Peek(1) == '*')) {
      comments->push_back(ScanComment(cur));
      pending_space = true;
      continue;
    }
    if (c == '"') {
      const std::string quoted = ScanQuoted(cur, '"');
      if (pending_space && !directive.text.empty()) directive.text += ' ';
      pending_space = false;
      directive.text += quoted;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur->Advance();
      pending_space = true;
      continue;
    }
    if (pending_space && !directive.text.empty()) directive.text += ' ';
    pending_space = false;
    directive.text.push_back(cur->Advance());
  }
  return directive;
}

}  // namespace

std::size_t SkipAngles(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (toks[i].kind != TokKind::kPunct) continue;
    if (t == "<" || t == "<<") depth += t == "<<" ? 2 : 1;
    if (t == ">" || t == ">>") {
      depth -= t == ">>" ? 2 : 1;
      if (depth <= 0) return i + 1;
    }
    if (t == ";") return i;
  }
  return i;
}

std::size_t SkipParens(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

std::size_t SkipBraces(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

LexResult Lex(const std::string& source) {
  LexResult result;
  Cursor cur{source};
  bool at_line_start = true;  // only whitespace seen since the last newline
  while (!cur.AtEnd()) {
    const char c = cur.Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') at_line_start = true;
      cur.Advance();
      continue;
    }
    if (c == '/' && (cur.Peek(1) == '/' || cur.Peek(1) == '*')) {
      result.comments.push_back(ScanComment(&cur));
      continue;
    }
    if (c == '#' && at_line_start) {
      result.directives.push_back(ScanDirective(&cur, &result.comments));
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    if (c == '"') {
      const int line = cur.line;
      const std::string text = ScanQuoted(&cur, '"');
      result.tokens.push_back({TokKind::kString, text, line});
      continue;
    }
    if (c == '\'') {
      const int line = cur.line;
      const std::string text = ScanQuoted(&cur, '\'');
      result.tokens.push_back({TokKind::kChar, text, line});
      continue;
    }
    if (IsIdentStart(c)) {
      const int line = cur.line;
      std::string text;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) text.push_back(cur.Advance());
      // Raw / prefixed string literals: R"(...)", u8"...", L"...".
      if (cur.Peek() == '"') {
        if (!text.empty() && text.back() == 'R') {
          SkipRawString(&cur);
          result.tokens.push_back({TokKind::kString, "\"\"", line});
          continue;
        }
        const std::string quoted = ScanQuoted(&cur, '"');
        result.tokens.push_back({TokKind::kString, quoted, line});
        continue;
      }
      result.tokens.push_back({TokKind::kIdent, text, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.Peek(1))))) {
      const int line = cur.line;
      std::string text;
      // pp-number: digits, idents, dots, and exponent signs.
      while (!cur.AtEnd()) {
        const char d = cur.Peek();
        if (IsIdentChar(d) || d == '.') {
          text.push_back(cur.Advance());
          if ((text.back() == 'e' || text.back() == 'E' ||
               text.back() == 'p' || text.back() == 'P') &&
              (cur.Peek() == '+' || cur.Peek() == '-')) {
            text.push_back(cur.Advance());
          }
          continue;
        }
        break;
      }
      result.tokens.push_back({TokKind::kNumber, text, line});
      continue;
    }
    // Multi-character punctuators the rules care about. "::" is kept as
    // one token so qualified-name chains are easy to walk.
    const int line = cur.line;
    std::string text(1, cur.Advance());
    if (text[0] == ':' && cur.Peek() == ':') {
      text.push_back(cur.Advance());
    } else if ((text[0] == '-' && cur.Peek() == '>') ||
               (text[0] == '<' && cur.Peek() == '<') ||
               (text[0] == '>' && cur.Peek() == '>')) {
      text.push_back(cur.Advance());
    }
    result.tokens.push_back({TokKind::kPunct, text, line});
  }
  result.num_lines = cur.line;
  return result;
}

ScopeMap::ScopeMap(const std::vector<Tok>& tokens) {
  inside_block_.assign(tokens.size(), false);
  std::vector<ScopeKind> stack;
  int block_depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Tok& tok = tokens[i];
    if (tok.kind == TokKind::kPunct && tok.text == "{") {
      // Classify from the tokens before the brace. Walk back over the
      // name/base-clause part to find the introducing keyword.
      ScopeKind kind = ScopeKind::kBlock;
      for (std::size_t back = i; back-- > 0;) {
        const Tok& prev = tokens[back];
        if (prev.kind == TokKind::kPunct &&
            (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
             prev.text == ")" || prev.text == "=")) {
          break;  // `) {` is a function/control block; `= {` an initializer
        }
        if (prev.kind == TokKind::kIdent) {
          if (prev.text == "namespace") {
            kind = ScopeKind::kNamespace;
            break;
          }
          if (prev.text == "class" || prev.text == "struct" ||
              prev.text == "union" || prev.text == "enum") {
            kind = ScopeKind::kType;
            break;
          }
        }
      }
      stack.push_back(kind);
      if (kind == ScopeKind::kBlock) ++block_depth;
    } else if (tok.kind == TokKind::kPunct && tok.text == "}") {
      if (!stack.empty()) {
        if (stack.back() == ScopeKind::kBlock) --block_depth;
        stack.pop_back();
      }
    }
    inside_block_[i] = block_depth > 0;
  }
}

}  // namespace qopt::lint
