#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "lint/callgraph.h"
#include "lint/lexer.h"

namespace qopt::lint {

namespace fs = std::filesystem;

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool ContainsNoCase(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

bool IsHeaderPath(const std::string& path) {
  return EndsWith(path, ".h") || EndsWith(path, ".hpp");
}

// ---------------------------------------------------------------------------
// Suppression comments
// ---------------------------------------------------------------------------

struct Suppressions {
  /// line -> qqo rules suppressed on that line.
  std::map<int, std::set<std::string>> by_line;
  /// NOLINT comments naming a qqo rule but lacking a ": reason" tail.
  std::vector<Finding> unjustified;
};

/// Parses NOLINT / NOLINTNEXTLINE markers out of the comment stream.
/// Grammar per marker: NOLINT[NEXTLINE](rule[, rule...])[: justification].
/// Only qqo-* rules participate; a bare NOLINT (no parens) is left to
/// clang-tidy and suppresses nothing here.
Suppressions CollectSuppressions(const std::string& path,
                                 const std::vector<Comment>& comments) {
  Suppressions result;
  for (const Comment& comment : comments) {
    const std::string& text = comment.text;
    std::size_t pos = text.find("NOLINT");
    if (pos == std::string::npos) continue;
    std::size_t cursor = pos + 6;  // past "NOLINT"
    int target_line = comment.line;
    if (text.compare(cursor, 8, "NEXTLINE") == 0) {
      cursor += 8;
      target_line = comment.line + 1;
    }
    if (cursor >= text.size() || text[cursor] != '(') continue;
    const std::size_t close = text.find(')', cursor);
    if (close == std::string::npos) continue;
    std::string rule_list = text.substr(cursor + 1, close - cursor - 1);
    std::vector<std::string> named_rules;
    std::istringstream rules(rule_list);
    std::string rule;
    const std::vector<std::string> known = AllRules();
    while (std::getline(rules, rule, ',')) {
      const std::size_t first = rule.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      rule = rule.substr(first, rule.find_last_not_of(" \t") - first + 1);
      if (rule.rfind("qqo-", 0) != 0) continue;
      named_rules.push_back(rule);
      if (rule == kNolintRule) {
        result.unjustified.push_back(
            {kNolintRule, path, comment.line,
             "NOLINT(qqo-nolint) is ineffective: qqo-nolint polices the "
             "suppression mechanism and cannot itself be suppressed"});
        continue;
      }
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        result.unjustified.push_back(
            {kNolintRule, path, comment.line,
             "NOLINT names unknown rule '" + rule +
                 "'; it suppresses nothing (see qqo_lint --help for the "
                 "rule list)"});
        continue;
      }
      result.by_line[target_line].insert(rule);
    }
    if (named_rules.empty()) continue;
    // Justification: a ':' after the ')' followed by at least one word.
    std::size_t after = close + 1;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after]))) {
      ++after;
    }
    bool justified = false;
    if (after < text.size() && text[after] == ':') {
      for (std::size_t i = after + 1; i < text.size(); ++i) {
        if (std::isalnum(static_cast<unsigned char>(text[i]))) {
          justified = true;
          break;
        }
      }
    }
    if (!justified) {
      std::string listed;
      for (const std::string& named : named_rules) {
        if (!listed.empty()) listed += ", ";
        listed += named;
      }
      result.unjustified.push_back(
          {kNolintRule, path, comment.line,
           "NOLINT(" + listed + ") needs a justification: "
           "// NOLINT(qqo-rule[, qqo-rule...]): reason"});
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Rule: qqo-determinism
// ---------------------------------------------------------------------------

const std::set<std::string>& StdRandomEngines() {
  static const std::set<std::string> kEngines = {
      "mt19937",        "mt19937_64",   "minstd_rand",
      "minstd_rand0",   "ranlux24",     "ranlux48",
      "ranlux24_base",  "ranlux48_base", "knuth_b",
      "default_random_engine"};
  return kEngines;
}

void CheckDeterminism(const std::string& path, const LexResult& lex,
                      std::vector<Finding>* findings) {
  // The one place allowed to touch raw entropy primitives is the project
  // RNG itself.
  if (EndsWith(path, "common/random.h") || EndsWith(path, "common/random.cc")) {
    return;
  }
  const std::vector<Tok>& toks = lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    const bool member_access =
        i > 0 && toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool called = i + 1 < toks.size() && toks[i + 1].text == "(";
    auto flag = [&](const std::string& message) {
      findings->push_back({kDeterminismRule, path, toks[i].line, message});
    };
    if (name == "random_device") {
      flag("std::random_device draws hardware entropy; seed a qopt::Rng "
           "(src/common/random.h) instead");
    } else if ((name == "rand" || name == "srand") && called &&
               !member_access) {
      flag(name + "() is a global, hidden-state RNG; use qopt::Rng");
    } else if (name == "time" && called && !member_access &&
               (i == 0 || toks[i - 1].kind != TokKind::kIdent)) {
      flag("time() reads the wall clock; results must not depend on it "
           "(use a fixed seed, or qopt::Deadline for budgets)");
    } else if (name == "system_clock") {
      flag("system_clock is adjustable wall-clock time; use "
           "std::chrono::steady_clock (see qopt::Deadline)");
    } else if (StdRandomEngines().count(name) > 0) {
      flag("ad-hoc std::" + name +
           " engine; route all randomness through qopt::Rng so sweeps "
           "stay reproducible from a single seed");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-ordered-output
// ---------------------------------------------------------------------------

const std::set<std::string>& UnorderedContainers() {
  static const std::set<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kContainers;
}

/// Names declared in this file with a container type from `containers`
/// (locals, members, parameters, and functions returning one).
std::set<std::string> CollectContainerNames(
    const std::vector<Tok>& toks, const std::set<std::string>& containers) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        containers.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    j = SkipAngles(toks, j);
    // Skip cv/ref/pointer decoration between the type and the name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// Names declared with an unordered container type, minus any name that is
/// also declared with an ordered container somewhere in the file — at token
/// level the two declarations are indistinguishable at the use site, so an
/// ambiguous name is excluded (same conservative stance as the
/// void-overload exclusion in the status-discard rule).
std::set<std::string> CollectUnorderedNames(const std::vector<Tok>& toks) {
  static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                 "multiset"};
  std::set<std::string> names =
      CollectContainerNames(toks, UnorderedContainers());
  for (const std::string& ordered : CollectContainerNames(toks, kOrdered)) {
    names.erase(ordered);
  }
  return names;
}

void CheckOrderedOutput(const std::string& path, const LexResult& lex,
                        std::vector<Finding>* findings) {
  const std::vector<Tok>& toks = lex.tokens;
  const std::set<std::string> unordered = CollectUnorderedNames(toks);
  if (unordered.empty()) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for over an unordered container: for ( ... : name ... )
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "for" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t end = SkipParens(toks, i + 1);
      int depth = 0;
      bool past_colon = false;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (toks[j].kind == TokKind::kPunct) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (toks[j].text == ":" && depth == 1) past_colon = true;
        }
        if (past_colon && toks[j].kind == TokKind::kIdent &&
            unordered.count(toks[j].text) > 0) {
          findings->push_back(
              {kOrderedOutputRule, path, toks[j].line,
               "range-for over unordered container '" + toks[j].text +
                   "' in a result path; iteration order is unspecified — "
                   "copy to a sorted vector (or use std::map) first"});
          break;
        }
      }
    }
    // Iterator iteration: name.begin() / name.cbegin() anywhere in a
    // result-path file.
    if (toks[i].kind == TokKind::kIdent &&
        (toks[i].text == "begin" || toks[i].text == "cbegin") &&
        i >= 2 && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].kind == TokKind::kIdent &&
        unordered.count(toks[i - 2].text) > 0) {
      findings->push_back(
          {kOrderedOutputRule, path, toks[i].line,
           "iterator walk over unordered container '" + toks[i - 2].text +
               "' in a result path; iteration order is unspecified"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-deadline-coverage
// ---------------------------------------------------------------------------

struct LoopMarker {
  int line = 0;
  std::string site;
};

std::vector<LoopMarker> CollectLoopMarkers(
    const std::vector<Comment>& comments) {
  std::vector<LoopMarker> markers;
  for (const Comment& comment : comments) {
    const std::size_t pos = comment.text.find("QQO_LOOP(");
    if (pos == std::string::npos) continue;
    const std::size_t close = comment.text.find(')', pos);
    if (close == std::string::npos) continue;
    markers.push_back(
        {comment.line, comment.text.substr(pos + 9, close - pos - 9)});
  }
  return markers;
}

/// Locates the body token range of the loop annotated by `marker` (the
/// next for/while/do at or within 3 lines below the comment). Returns
/// false when no loop statement follows — the deadline-coverage rule owns
/// reporting that as a dangling marker.
bool FindMarkedLoopBody(const std::vector<Tok>& toks, const LoopMarker& marker,
                        std::size_t* body_out, std::size_t* body_end_out) {
  std::size_t loop = toks.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line < marker.line) continue;
    if (toks[i].line > marker.line + 3) break;
    if (toks[i].kind == TokKind::kIdent &&
        (toks[i].text == "for" || toks[i].text == "while" ||
         toks[i].text == "do")) {
      loop = i;
      break;
    }
  }
  if (loop == toks.size()) return false;
  // Locate the body: do -> immediately after; for/while -> after the
  // closing ")" of the header.
  std::size_t body = loop + 1;
  if (toks[loop].text != "do" && body < toks.size() &&
      toks[body].text == "(") {
    body = SkipParens(toks, body);
  }
  std::size_t body_end;
  if (body < toks.size() && toks[body].text == "{") {
    body_end = SkipBraces(toks, body);
  } else {
    body_end = body;
    while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
  }
  *body_out = body;
  *body_end_out = body_end;
  return true;
}

void CheckDeadlineCoverage(const std::string& path, const LexResult& lex,
                           std::vector<Finding>* findings) {
  const std::vector<Tok>& toks = lex.tokens;
  for (const LoopMarker& marker : CollectLoopMarkers(lex.comments)) {
    std::size_t body = 0;
    std::size_t body_end = 0;
    if (!FindMarkedLoopBody(toks, marker, &body, &body_end)) {
      findings->push_back(
          {kDeadlineCoverageRule, path, marker.line,
           "dangling QQO_LOOP(" + marker.site +
               ") marker: no for/while/do follows within 3 lines"});
      continue;
    }
    // Coverage comes from a wall-clock deadline ("deadline" identifiers)
    // or from cooperative cancellation ("cancel"/"cancelled" identifiers):
    // fan-out drain loops such as the portfolio racer's wait loop are
    // bounded by a linked CancelToken rather than by polling the clock,
    // and that satisfies the same wind-down contract (Deadline::Check
    // reports the token before expiry anyway).
    bool consults_deadline = false;
    for (std::size_t i = body; i < body_end; ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          (ContainsNoCase(toks[i].text, "deadline") ||
           ContainsNoCase(toks[i].text, "cancel"))) {
        consults_deadline = true;
        break;
      }
    }
    if (!consults_deadline) {
      findings->push_back(
          {kDeadlineCoverageRule, path, marker.line,
           "QQO_LOOP(" + marker.site +
               ") body never consults the deadline or a cancellation "
               "token; call deadline.Check() (or token.cancelled(), or a "
               "CheckDeadline helper) every iteration so the solver can "
               "wind down cooperatively"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-obs-coverage
// ---------------------------------------------------------------------------

const std::set<std::string>& ObsMacros() {
  static const std::set<std::string> kMacros = {
      "QQO_COUNT", "QQO_OBSERVE", "QQO_GAUGE_MAX", "QQO_TRACE_SPAN"};
  return kMacros;
}

/// Every QQO_LOOP-annotated hot loop must also be observable: its body (or
/// something it calls textually inside the body) has to touch one of the
/// src/obs macros so the loop shows up in --metrics / --trace-out output.
/// Dangling markers are reported by the deadline-coverage rule, not here.
void CheckObsCoverage(const std::string& path, const LexResult& lex,
                      std::vector<Finding>* findings) {
  const std::vector<Tok>& toks = lex.tokens;
  for (const LoopMarker& marker : CollectLoopMarkers(lex.comments)) {
    std::size_t body = 0;
    std::size_t body_end = 0;
    if (!FindMarkedLoopBody(toks, marker, &body, &body_end)) continue;
    bool instrumented = false;
    for (std::size_t i = body; i < body_end; ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          ObsMacros().count(toks[i].text) > 0) {
        instrumented = true;
        break;
      }
    }
    if (!instrumented) {
      findings->push_back(
          {kObsCoverageRule, path, marker.line,
           "QQO_LOOP(" + marker.site +
               ") body has no observability instrumentation; add a "
               "QQO_COUNT / QQO_OBSERVE / QQO_GAUGE_MAX metric or a "
               "QQO_TRACE_SPAN so the loop is visible in --metrics and "
               "--trace-out output"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-hot-loop-alloc
// ---------------------------------------------------------------------------

/// Names that the file visibly preallocates: any identifier that appears
/// as the receiver of a .reserve(...) or .resize(...) call anywhere in the
/// file. push_back/emplace_back into these is amortization-safe and not
/// flagged (same whole-file conservatism as the container-name collection
/// in the ordered-output rule).
std::set<std::string> CollectPreallocatedNames(const std::vector<Tok>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        (toks[i].text != "reserve" && toks[i].text != "resize" &&
         toks[i].text != "assign")) {
      continue;
    }
    if (toks[i + 1].text != "(") continue;
    if (toks[i - 1].kind != TokKind::kPunct ||
        (toks[i - 1].text != "." && toks[i - 1].text != "->")) {
      continue;
    }
    if (toks[i - 2].kind == TokKind::kIdent) names.insert(toks[i - 2].text);
  }
  return names;
}

/// QQO_LOOP-annotated hot loops must not allocate per iteration: no `new`,
/// no std::string construction or to_string, no make_unique/make_shared,
/// and no push_back/emplace_back into a container the file never
/// reserve()/resize()s. Preallocate outside the loop (arena / Reset()
/// reuse pattern) or hoist the allocation, and NOLINT with a reason for
/// the genuinely-amortized exceptions.
void CheckHotLoopAlloc(const std::string& path, const LexResult& lex,
                       std::vector<Finding>* findings) {
  const std::vector<Tok>& toks = lex.tokens;
  const std::vector<LoopMarker> markers = CollectLoopMarkers(lex.comments);
  if (markers.empty()) return;
  const std::set<std::string> preallocated = CollectPreallocatedNames(toks);
  for (const LoopMarker& marker : markers) {
    std::size_t body = 0;
    std::size_t body_end = 0;
    if (!FindMarkedLoopBody(toks, marker, &body, &body_end)) continue;
    for (std::size_t i = body; i < body_end; ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& name = toks[i].text;
      const bool called = i + 1 < body_end && toks[i + 1].text == "(";
      auto flag = [&](const std::string& message) {
        findings->push_back({kHotLoopAllocRule, path, toks[i].line,
                             "QQO_LOOP(" + marker.site + "): " + message});
      };
      if (name == "new") {
        flag("'new' inside a hot loop allocates every iteration; hoist "
             "the allocation or use a reused arena");
      } else if ((name == "push_back" || name == "emplace_back") && called &&
                 i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
                 (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
                 toks[i - 2].kind == TokKind::kIdent &&
                 preallocated.count(toks[i - 2].text) == 0) {
        flag("" + name + " into '" + toks[i - 2].text +
             "' which is never reserve()/resize()d; growth reallocates "
             "mid-sweep — preallocate outside the loop");
      } else if (name == "string" && i + 1 < body_end &&
                 (toks[i + 1].kind == TokKind::kIdent ||
                  toks[i + 1].text == "(" || toks[i + 1].text == "{")) {
        flag("std::string construction inside a hot loop heap-allocates; "
             "build strings outside the loop");
      } else if (name == "to_string" && called) {
        flag("to_string allocates a fresh string every iteration; format "
             "outside the loop");
      } else if ((name == "make_unique" || name == "make_shared") &&
                 (called || (i + 1 < body_end && toks[i + 1].text == "<"))) {
        flag(name + " inside a hot loop allocates every iteration; hoist "
                    "the allocation");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-status-discard
// ---------------------------------------------------------------------------

void CheckStatusDiscard(const std::string& path, const LexResult& lex,
                        const SymbolTable& symbols,
                        std::vector<Finding>* findings) {
  const std::vector<Tok>& toks = lex.tokens;
  // Statement starts: token 0 and any token following one of these.
  auto is_boundary = [](const Tok& t) {
    return (t.kind == TokKind::kPunct &&
            (t.text == ";" || t.text == "{" || t.text == "}" ||
             t.text == ")")) ||
           (t.kind == TokKind::kIdent && (t.text == "else" || t.text == "do"));
  };
  for (std::size_t start = 0; start < toks.size(); ++start) {
    if (start != 0 && !is_boundary(toks[start - 1])) continue;
    // Match a bare call chain:  [ident ("::"|"."|"->")]* ident "(" ... ")" ";"
    std::size_t j = start;
    while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      const std::string& callee = toks[j].text;
      if (j + 1 >= toks.size()) break;
      const std::string& next = toks[j + 1].text;
      if (next == "(" ) {
        if (symbols.Contains(callee)) {
          const std::size_t after = SkipParens(toks, j + 1);
          if (after < toks.size() && toks[after].text == ";") {
            findings->push_back(
                {kStatusDiscardRule, path, toks[j].line,
                 "result of Status-returning '" + callee +
                     "' is silently dropped; wrap in "
                     "QOPT_RETURN_IF_ERROR(...) or call .IgnoreError()"});
          }
        }
        break;
      }
      if (next == "::" || next == "." || next == "->") {
        j += 2;  // continue the chain
        continue;
      }
      break;  // adjacent ident ("return Foo", declarations) or operator
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: qqo-header-hygiene
// ---------------------------------------------------------------------------

void CheckHeaderHygiene(const std::string& path, const LexResult& lex,
                        std::vector<Finding>* findings) {
  if (!IsHeaderPath(path)) return;
  if (lex.directives.empty() || lex.directives[0].text != "#pragma once") {
    bool has_pragma_somewhere = false;
    for (const Directive& d : lex.directives) {
      if (d.text == "#pragma once") {
        has_pragma_somewhere = true;
        break;
      }
    }
    findings->push_back(
        {kHeaderHygieneRule, path,
         lex.directives.empty() ? 1 : lex.directives[0].line,
         has_pragma_somewhere
             ? "#pragma once must be the first preprocessor directive"
             : "header must start with #pragma once (include guards are "
               "retired in this codebase)"});
  }
  const ScopeMap scopes(lex.tokens);
  for (std::size_t i = 0; i + 1 < lex.tokens.size(); ++i) {
    if (lex.tokens[i].kind == TokKind::kIdent &&
        lex.tokens[i].text == "using" &&
        lex.tokens[i + 1].kind == TokKind::kIdent &&
        lex.tokens[i + 1].text == "namespace" && !scopes.InsideBlock(i)) {
      findings->push_back(
          {kHeaderHygieneRule, path, lex.tokens[i].line,
           "'using namespace' at namespace scope in a header leaks into "
           "every includer; qualify names instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// Policy files
// ---------------------------------------------------------------------------

Policy ParsePolicyFile(const fs::path& file, const Policy& inherited) {
  Policy policy = inherited;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first, line.find_last_not_of(" \t\r") - first + 1);
    if (line == "result-path") policy.result_path = true;
    if (line == "no-result-path") policy.result_path = false;
  }
  return policy;
}

/// Nearest-policy-wins lookup with a per-directory cache. Policies nest:
/// the chain of policy files from the root down to the file's directory is
/// applied in order, so a subdirectory can override its parent.
class PolicyResolver {
 public:
  explicit PolicyResolver(std::string policy_filename)
      : policy_filename_(std::move(policy_filename)) {}

  Policy ForFile(const fs::path& file) {
    std::error_code ec;
    fs::path dir = fs::absolute(file, ec).parent_path();
    return ForDirectory(dir);
  }

 private:
  Policy ForDirectory(const fs::path& dir) {
    auto it = cache_.find(dir.string());
    if (it != cache_.end()) return it->second;
    Policy inherited;
    if (dir.has_parent_path() && dir.parent_path() != dir) {
      inherited = ForDirectory(dir.parent_path());
    }
    Policy policy = inherited;
    std::error_code ec;
    const fs::path policy_file = dir / policy_filename_;
    if (fs::exists(policy_file, ec)) {
      policy = ParsePolicyFile(policy_file, inherited);
    }
    cache_.emplace(dir.string(), policy);
    return policy;
  }

  std::string policy_filename_;
  std::map<std::string, Policy> cache_;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool ReadFile(const fs::path& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return true;
}

bool IsLintableFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// GitHub workflow-command data escaping: %, CR and LF are percent-encoded
/// so multi-line messages survive the annotation protocol.
std::string EscapeGithub(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> AllRules() {
  return {kDeterminismRule,      kOrderedOutputRule,  kDeadlineCoverageRule,
          kObsCoverageRule,      kHotLoopAllocRule,   kStatusDiscardRule,
          kHeaderHygieneRule,    kDeadlinePlumbingRule,
          kLockDisciplineRule,   kPoolReentrancyRule};
}

bool Options::IsRuleEnabled(const std::string& rule) const {
  if (rules.empty()) return true;
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

void SymbolTable::HarvestFrom(const std::string& content) {
  const LexResult lex = Lex(content);
  const std::vector<Tok>& toks = lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    std::size_t name_index = toks.size();
    bool void_return = false;
    if (toks[i].text == "Status") {
      name_index = i + 1;
    } else if (toks[i].text == "void") {
      name_index = i + 1;
      void_return = true;
    } else if (toks[i].text == "StatusOr" && i + 1 < toks.size() &&
               toks[i + 1].text == "<") {
      name_index = SkipAngles(toks, i + 1);
      while (name_index < toks.size() &&
             (toks[name_index].text == "&" || toks[name_index].text == "*")) {
        ++name_index;
      }
    } else {
      continue;
    }
    if (name_index + 1 < toks.size() &&
        toks[name_index].kind == TokKind::kIdent &&
        toks[name_index].text != "operator" &&
        toks[name_index + 1].text == "(") {
      if (void_return) {
        void_overloads_.insert(toks[name_index].text);
      } else {
        status_functions_.insert(toks[name_index].text);
      }
    }
  }
}

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content,
                                 const Policy& policy,
                                 const SymbolTable& symbols,
                                 const Options& options,
                                 const ProgramIndex* program) {
  const LexResult lex = Lex(content);
  const Suppressions suppressions = CollectSuppressions(path, lex.comments);

  std::vector<Finding> raw;
  if (program != nullptr) {
    for (const Finding& finding : program->FindingsFor(path)) {
      if (options.IsRuleEnabled(finding.rule)) raw.push_back(finding);
    }
  }
  if (options.IsRuleEnabled(kDeterminismRule)) {
    CheckDeterminism(path, lex, &raw);
  }
  if (options.IsRuleEnabled(kOrderedOutputRule) && policy.result_path) {
    CheckOrderedOutput(path, lex, &raw);
  }
  if (options.IsRuleEnabled(kDeadlineCoverageRule)) {
    CheckDeadlineCoverage(path, lex, &raw);
  }
  if (options.IsRuleEnabled(kObsCoverageRule)) {
    CheckObsCoverage(path, lex, &raw);
  }
  if (options.IsRuleEnabled(kHotLoopAllocRule)) {
    CheckHotLoopAlloc(path, lex, &raw);
  }
  if (options.IsRuleEnabled(kStatusDiscardRule)) {
    CheckStatusDiscard(path, lex, symbols, &raw);
  }
  if (options.IsRuleEnabled(kHeaderHygieneRule)) {
    CheckHeaderHygiene(path, lex, &raw);
  }

  std::vector<Finding> findings;
  for (Finding& finding : raw) {
    const auto it = suppressions.by_line.find(finding.line);
    if (it != suppressions.by_line.end() &&
        it->second.count(finding.rule) > 0) {
      continue;
    }
    findings.push_back(std::move(finding));
  }
  // The suppression policeman cannot itself be suppressed.
  findings.insert(findings.end(), suppressions.unjustified.begin(),
                  suppressions.unjustified.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

bool LintPaths(const std::vector<std::string>& paths, const Options& options,
               std::vector<Finding>* findings, std::string* error) {
  std::vector<fs::path> files;
  for (const std::string& raw : paths) {
    const fs::path path(raw);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && IsLintableFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      if (error != nullptr) *error = "cannot read path: " + raw;
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  auto excluded = [&](const fs::path& file) {
    const std::string generic = file.generic_string();
    for (const std::string& substr : options.excludes) {
      if (generic.find(substr) != std::string::npos) return true;
    }
    return false;
  };

  // Pass 1: harvest Status/StatusOr function names and the cross-TU
  // program index (declarations, call graph, lock sites) from every file.
  SymbolTable symbols;
  ProgramIndex program;
  std::vector<std::pair<fs::path, std::string>> contents;
  for (const fs::path& file : files) {
    if (excluded(file)) continue;
    std::string content;
    if (!ReadFile(file, &content)) {
      if (error != nullptr) *error = "cannot read file: " + file.string();
      return false;
    }
    symbols.HarvestFrom(content);
    program.AddFile(file.generic_string(), content);
    contents.emplace_back(file, std::move(content));
  }
  program.Finalize();

  // Pass 2: lint.
  PolicyResolver policies(options.policy_filename);
  for (const auto& [file, content] : contents) {
    const Policy policy = policies.ForFile(file);
    std::vector<Finding> file_findings = LintContent(
        file.generic_string(), content, policy, symbols, options, &program);
    findings->insert(findings->end(),
                     std::make_move_iterator(file_findings.begin()),
                     std::make_move_iterator(file_findings.end()));
  }
  return true;
}

int RunLintMain(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  Options options;
  std::vector<std::string> paths;
  bool list_symbols = false;
  std::string format = "text";
  for (const std::string& arg : args) {
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      out << "usage: qqo_lint [options] <file-or-directory>...\n"
             "  --rule=NAME       run only this rule (repeatable)\n"
             "  --exclude=SUBSTR  skip paths containing SUBSTR (repeatable)\n"
             "  --policy=NAME     per-directory policy filename "
             "(default .qqo-lint-policy)\n"
             "  --format=FMT      text (default), json, or github "
             "(workflow annotations)\n"
             "  --list-symbols    print harvested Status symbols and exit\n"
             "exit codes: 0 clean, 1 findings, 2 usage error\n";
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
      if (format != "text" && format != "json" && format != "github") {
        err << "qqo_lint: unknown format '" << format
            << "' (expected text, json, or github)\n";
        return 2;
      }
    } else if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = value_of("--rule=");
      const std::vector<std::string> known = AllRules();
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        err << "qqo_lint: unknown rule '" << rule << "'\n";
        return 2;
      }
      options.rules.push_back(rule);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      options.excludes.push_back(value_of("--exclude="));
    } else if (arg.rfind("--policy=", 0) == 0) {
      options.policy_filename = value_of("--policy=");
    } else if (arg == "--list-symbols") {
      list_symbols = true;
    } else if (arg.rfind("-", 0) == 0) {
      err << "qqo_lint: unknown option '" << arg << "' (try --help)\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "qqo_lint: no input paths (try --help)\n";
    return 2;
  }
  if (list_symbols) {
    SymbolTable symbols;
    for (const std::string& raw : paths) {
      std::string content;
      if (!ReadFile(raw, &content)) {
        err << "qqo_lint: cannot read file: " << raw << "\n";
        return 2;
      }
      symbols.HarvestFrom(content);
    }
    for (const std::string& name : symbols.functions()) out << name << "\n";
    return 0;
  }
  std::vector<Finding> findings;
  std::string error;
  if (!LintPaths(paths, options, &findings, &error)) {
    err << "qqo_lint: " << error << "\n";
    return 2;
  }
  if (format == "json") {
    out << "{\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) out << ",";
      out << "{\"file\":\"" << EscapeJson(f.file) << "\",\"line\":" << f.line
          << ",\"rule\":\"" << EscapeJson(f.rule) << "\",\"message\":\""
          << EscapeJson(f.message) << "\"}";
    }
    out << "],\"count\":" << findings.size() << "}\n";
  } else if (format == "github") {
    for (const Finding& f : findings) {
      out << "::error file=" << f.file << ",line=" << f.line
          << ",title=qqo_lint [" << f.rule << "]::" << EscapeGithub(f.message)
          << "\n";
    }
    out << "qqo_lint: " << findings.size() << " finding(s)\n";
  } else {
    for (const Finding& finding : findings) {
      out << finding.file << ":" << finding.line << ": [" << finding.rule
          << "] " << finding.message << "\n";
    }
    out << "qqo_lint: " << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace qopt::lint
