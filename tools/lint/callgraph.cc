#include "lint/callgraph.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <functional>
#include <tuple>
#include <utility>

namespace qopt::lint {

namespace {

bool ContainsNoCase(const std::string& haystack, const std::string& needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end(), [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

/// Identifiers that can never be function names or callees.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "else",     "for",      "while",     "do",
      "switch",   "case",     "default",  "return",    "break",
      "continue", "goto",     "new",      "delete",    "sizeof",
      "alignof",  "alignas",  "decltype", "noexcept",  "typedef",
      "using",    "namespace","template", "typename",  "const",
      "constexpr","static",   "inline",   "extern",    "explicit",
      "virtual",  "override", "final",    "public",    "private",
      "protected","friend",   "class",    "struct",    "enum",
      "union",    "try",      "catch",    "throw",     "operator",
      "this",     "nullptr",  "true",     "false",     "auto",
      "void",     "bool",     "char",     "short",     "int",
      "long",     "float",    "double",   "signed",    "unsigned",
      "mutable",  "volatile", "requires", "concept",   "co_await",
      "co_return","co_yield", "thread_local", "static_assert",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "not", "and", "or", "asm"};
  return kKeywords;
}

/// ALL_CAPS identifiers are macro invocations (TEST, QOPT_CHECK, ...); the
/// index skips them as names — the calls nested in their arguments are
/// still harvested.
bool MacroLike(const std::string& name) {
  if (name.size() < 2) return false;
  bool has_alpha = false;
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

/// An identifier that self-evidently carries budget state: forwarding
/// `options.deadline` or `race_token` satisfies qqo-deadline-plumbing even
/// when the charging analysis never saw the value being built.
bool BudgetNamed(const std::string& ident) {
  return ContainsNoCase(ident, "deadline") || ContainsNoCase(ident, "budget") ||
         ContainsNoCase(ident, "token") || ContainsNoCase(ident, "cancel");
}

/// A token-level identifier preceding a candidate function name that is
/// compatible with a declaration ("Status", "&", "::", ...).
bool BannedPrevIdent(const std::string& text) {
  static const std::set<std::string> kBanned = {
      "return", "else",   "do",       "case",     "new",      "delete",
      "throw",  "goto",   "sizeof",   "alignof",  "typedef",  "using",
      "co_await", "co_return", "co_yield", "not", "and", "or"};
  return kBanned.count(text) > 0 || MacroLike(text);
}

const std::set<std::string>& GuardTypes() {
  static const std::set<std::string> kGuards = {"lock_guard", "unique_lock",
                                                "scoped_lock", "shared_lock"};
  return kGuards;
}

/// Calls that block the current thread on the pool or on other work.
const std::set<std::string>& PoolBlockingCalls() {
  static const std::set<std::string> kBlocking = {
      "ParallelFor", "ParallelForRange", "WaitFor", "DispatchRace"};
  return kBlocking;
}

const std::set<std::string>& CvWaitNames() {
  static const std::set<std::string> kWaits = {"wait", "wait_for",
                                               "wait_until"};
  return kWaits;
}

/// Calls that hand a lambda to the ThreadPool for execution.
const std::set<std::string>& PoolEntryCalls() {
  static const std::set<std::string> kEntries = {"Submit", "ParallelFor",
                                                 "ParallelForRange"};
  return kEntries;
}

std::string BaseName(const std::string& path) {
  return std::filesystem::path(path).filename().generic_string();
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += "', '";
    out += name;
  }
  return "'" + out + "'";
}

// Everything AddFile extracts from one translation unit; ProgramIndex
// copies it into its private per-file pack.
struct ParsedNested {
  std::string outer;
  std::string inner;
  int line = 0;
};
struct ParsedCallUnderLock {
  std::string callee;
  int line = 0;
  std::vector<std::string> held;
};
struct ParsedFile {
  std::vector<DefinitionInfo> defs;
  std::vector<SignatureInfo> decls;
  std::map<std::string, std::set<std::string>> struct_members;
  std::vector<ParsedNested> nested;
  std::vector<ParsedCallUnderLock> calls_under_lock;
  std::vector<Finding> local;
};

/// Single-file extraction pass. Token-structural only: no symbol
/// resolution happens here (that is Finalize's job).
class FileParser {
 public:
  FileParser(std::string path, const std::string& content)
      : path_(std::move(path)), lex_(Lex(content)), toks_(lex_.tokens) {
    BuildStructure();
  }

  ParsedFile Run() {
    HarvestStructs();
    HarvestFunctions();
    HarvestLocks();
    HarvestDefBodies();
    CheckPoolReentrancy();
    return std::move(out_);
  }

 private:
  bool IsPunct(std::size_t i, const char* text) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kPunct &&
           toks_[i].text == text;
  }
  bool IsIdent(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }
  bool MemberAccess(std::size_t i) const {
    return i > 0 && toks_[i - 1].kind == TokKind::kPunct &&
           (toks_[i - 1].text == "." || toks_[i - 1].text == "->");
  }

  /// Brace matching, innermost enclosing "{" per token, and lambda-body
  /// brace detection (a "[" capture list that is not a subscript or an
  /// attribute, followed by an optional parameter list and specifiers,
  /// then "{").
  void BuildStructure() {
    const std::size_t n = toks_.size();
    brace_match_.assign(n, n);
    enclosing_open_.assign(n, n);
    lambda_body_.assign(n, false);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n; ++i) {
      enclosing_open_[i] = stack.empty() ? n : stack.back();
      if (toks_[i].kind != TokKind::kPunct) continue;
      if (toks_[i].text == "{") {
        stack.push_back(i);
      } else if (toks_[i].text == "}" && !stack.empty()) {
        brace_match_[stack.back()] = i;
        stack.pop_back();
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!IsPunct(i, "[")) continue;
      if (i > 0 && (toks_[i - 1].kind == TokKind::kIdent ||
                    toks_[i - 1].text == "]" || toks_[i - 1].text == ")")) {
        continue;  // subscript
      }
      if (IsPunct(i + 1, "[")) continue;  // [[attribute]]
      int depth = 0;
      std::size_t j = i;
      for (; j < n; ++j) {
        if (toks_[j].kind != TokKind::kPunct) continue;
        if (toks_[j].text == "[") ++depth;
        if (toks_[j].text == "]" && --depth == 0) break;
      }
      if (j >= n) continue;
      std::size_t k = j + 1;
      if (IsPunct(k, "(")) k = SkipParens(toks_, k);
      while (k < n && (toks_[k].kind == TokKind::kIdent ||
                       toks_[k].text == "->" || toks_[k].text == "::" ||
                       toks_[k].text == "&" || toks_[k].text == "*")) {
        if (toks_[k].text == "noexcept" && IsPunct(k + 1, "(")) {
          k = SkipParens(toks_, k + 1);
        } else {
          ++k;
        }
      }
      if (k < n && IsPunct(k, "{")) lambda_body_[k] = true;
    }
  }

  /// Walks [begin, end) skipping lambda bodies that START inside the range
  /// — their code runs later, not here. Calls fn(i) for executed tokens.
  void ForEachExecuted(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn) const {
    for (std::size_t i = begin; i < end; ++i) {
      if (lambda_body_[i] && i > begin) {
        i = brace_match_[i] == toks_.size() ? end : brace_match_[i];
        continue;
      }
      fn(i);
    }
  }

  // --- struct member harvest (budget-bearing fixed point input) ---
  void HarvestStructs() {
    const std::size_t n = toks_.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (!IsIdent(i) ||
          (toks_[i].text != "struct" && toks_[i].text != "class")) {
        continue;
      }
      if (i > 0 && toks_[i - 1].kind == TokKind::kIdent &&
          toks_[i - 1].text == "enum") {
        continue;  // enum class: enumerators, not members
      }
      if (!IsIdent(i + 1)) continue;
      const std::string name = toks_[i + 1].text;
      std::size_t j = i + 2;
      while (j < n && !IsPunct(j, "{") && !IsPunct(j, ";")) {
        j = IsPunct(j, "(") ? SkipParens(toks_, j) : j + 1;
      }
      if (!IsPunct(j, "{")) continue;  // forward declaration
      const std::size_t close = brace_match_[j];
      std::set<std::string>& members = out_.struct_members[name];
      std::vector<std::string> idents;
      bool has_paren = false;
      bool stopped = false;
      auto reset = [&] {
        idents.clear();
        has_paren = false;
        stopped = false;
      };
      for (std::size_t k = j + 1; k < close;) {
        const Tok& t = toks_[k];
        if (t.kind == TokKind::kPunct && t.text == "(") {
          if (!stopped) has_paren = true;
          k = SkipParens(toks_, k);
          continue;
        }
        if (t.kind == TokKind::kPunct && t.text == "{") {
          const bool was_fn = has_paren;
          k = SkipBraces(toks_, k);
          if (was_fn) {
            reset();  // in-class method body; no trailing ";" required
          } else {
            stopped = true;  // brace init or nested type body
          }
          continue;
        }
        if (t.kind == TokKind::kPunct && (t.text == ";" || t.text == ":")) {
          if (t.text == ";" && !has_paren && idents.size() >= 2) {
            // data member: every identifier before the member name is part
            // of its type spelling
            for (std::size_t m = 0; m + 1 < idents.size(); ++m) {
              members.insert(idents[m]);
            }
          }
          reset();
          ++k;
          continue;
        }
        if (!stopped && t.kind == TokKind::kIdent) idents.push_back(t.text);
        if (!stopped && t.kind == TokKind::kPunct && t.text == "=") {
          stopped = true;
        }
        ++k;
      }
    }
  }

  // --- function declaration / definition harvest ---

  /// Top-level comma-separated ranges of a parenthesized group;
  /// `open` indexes "(" and `close` its ")".
  std::vector<std::pair<std::size_t, std::size_t>> SplitPieces(
      std::size_t open, std::size_t close) const {
    std::vector<std::pair<std::size_t, std::size_t>> pieces;
    std::size_t start = open + 1;
    for (std::size_t j = open + 1; j < close;) {
      if (IsPunct(j, "(")) {
        j = SkipParens(toks_, j);
      } else if (IsPunct(j, "<") || IsPunct(j, "<<")) {
        j = SkipAngles(toks_, j);
      } else if (IsPunct(j, "{")) {
        j = SkipBraces(toks_, j);
      } else if (IsPunct(j, ",")) {
        pieces.emplace_back(start, j);
        start = ++j;
      } else {
        ++j;
      }
    }
    if (start < close) pieces.emplace_back(start, close);
    return pieces;
  }

  ParamInfo ParseParam(std::size_t begin, std::size_t end) const {
    ParamInfo param;
    for (std::size_t j = begin; j < end; ++j) {
      if (IsPunct(j, "=")) break;  // default argument
      if (IsIdent(j)) param.type_idents.push_back(toks_[j].text);
    }
    if (!param.type_idents.empty()) param.name = param.type_idents.back();
    return param;
  }

  /// Declaration-shaped parameter list: every piece (default stripped)
  /// reads as "type name" — at least two tokens, no member access, no
  /// literals, no nested call parens. Rejects constructor-style locals
  /// (`Statevector state(n);`) masquerading as declarations.
  bool PiecesLookDeclared(
      const std::vector<std::pair<std::size_t, std::size_t>>& pieces) const {
    for (const auto& [begin, end] : pieces) {
      std::size_t count = 0;
      for (std::size_t j = begin; j < end; ++j) {
        if (IsPunct(j, "=")) break;
        const Tok& t = toks_[j];
        if (t.kind == TokKind::kNumber || t.kind == TokKind::kString ||
            t.kind == TokKind::kChar) {
          return false;
        }
        if (t.kind == TokKind::kPunct &&
            (t.text == "." || t.text == "->" || t.text == "(")) {
          return false;
        }
        ++count;
      }
      if (count < 2) return false;
    }
    return true;
  }

  /// Skips const/noexcept/ref-qualifiers/trailing-return after the ")" of
  /// a candidate signature. Returns the index of the token that decides
  /// its fate ("{" definition, ":" ctor-init, ";" declaration).
  std::size_t SkipSignatureSuffix(std::size_t after) const {
    const std::size_t n = toks_.size();
    while (after < n) {
      const Tok& t = toks_[after];
      if (t.kind == TokKind::kIdent &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable")) {
        if (t.text == "noexcept" && IsPunct(after + 1, "(")) {
          after = SkipParens(toks_, after + 1);
        } else {
          ++after;
        }
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "&") {
        ++after;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "->") {
        ++after;  // trailing return type: skip its name tokens
        while (after < n &&
               (toks_[after].kind == TokKind::kIdent ||
                toks_[after].text == "::" || toks_[after].text == "&" ||
                toks_[after].text == "*")) {
          ++after;
        }
        if (after < n && (IsPunct(after, "<") || IsPunct(after, "<<"))) {
          after = SkipAngles(toks_, after);
        }
        continue;
      }
      break;
    }
    return after;
  }

  /// Walks a constructor member-init list starting just past the ":".
  /// Returns the index of the body "{", or toks_.size() when the shape
  /// does not match.
  std::size_t SkipCtorInitList(std::size_t j) const {
    const std::size_t n = toks_.size();
    while (j < n) {
      if (!IsIdent(j)) return n;
      ++j;
      while (IsPunct(j, "::") && IsIdent(j + 1)) j += 2;  // qualified base
      if (IsPunct(j, "<")) j = SkipAngles(toks_, j);      // templated base
      if (IsPunct(j, "(")) {
        j = SkipParens(toks_, j);
      } else if (IsPunct(j, "{")) {
        j = SkipBraces(toks_, j);
      } else {
        return n;
      }
      if (IsPunct(j, ",")) {
        ++j;
        continue;
      }
      return IsPunct(j, "{") ? j : n;
    }
    return n;
  }

  void HarvestFunctions() {
    const std::size_t n = toks_.size();
    struct Candidate {
      SignatureInfo sig;
      std::size_t name_idx = 0;
      std::size_t body_open = 0;  // toks_.size() for declarations
    };
    std::vector<Candidate> cands;
    for (std::size_t i = 0; i < n; ++i) {
      if (!IsIdent(i)) continue;
      const std::string& name = toks_[i].text;
      if (Keywords().count(name) > 0 || MacroLike(name)) continue;
      if (!IsPunct(i + 1, "(")) continue;
      const std::size_t past_params = SkipParens(toks_, i + 1);
      if (past_params >= n || !IsPunct(past_params - 1, ")")) continue;
      // Classify the token before the name.
      bool prev_common = i == 0;
      bool prev_def_only = false;
      if (i > 0) {
        const Tok& prev = toks_[i - 1];
        if (prev.kind == TokKind::kIdent) {
          prev_common = !BannedPrevIdent(prev.text);
        } else if (prev.text == "&" || prev.text == "*" ||
                   prev.text == "::" || prev.text == ">" ||
                   prev.text == ">>" || prev.text == "~" ||
                   prev.text == ":") {
          prev_common = true;
        } else if (prev.text == "{" || prev.text == "}" || prev.text == ";") {
          prev_def_only = true;  // in-class ctor after a member/body
        }
      }
      if (!prev_common && !prev_def_only) continue;
      std::size_t after = SkipSignatureSuffix(past_params);
      std::size_t body = n;
      if (after < n && IsPunct(after, "{")) {
        body = after;
      } else if (after < n && IsPunct(after, ":")) {
        body = SkipCtorInitList(after + 1);
      }
      const auto pieces = SplitPieces(i + 1, past_params - 1);
      if (body < n) {
        Candidate cand;
        cand.sig.name = name;
        cand.sig.file = path_;
        cand.sig.line = toks_[i].line;
        cand.sig.is_definition = true;
        for (const auto& [b, e] : pieces) {
          cand.sig.params.push_back(ParseParam(b, e));
        }
        cand.name_idx = i;
        cand.body_open = body;
        cands.push_back(std::move(cand));
        continue;
      }
      if (!prev_common) continue;  // declarations need a type-ish prev
      if (after >= n || !IsPunct(after, ";")) continue;
      if (!PiecesLookDeclared(pieces)) continue;
      Candidate cand;
      cand.sig.name = name;
      cand.sig.file = path_;
      cand.sig.line = toks_[i].line;
      for (const auto& [b, e] : pieces) {
        cand.sig.params.push_back(ParseParam(b, e));
      }
      cand.name_idx = i;
      cand.body_open = n;
      cands.push_back(std::move(cand));
    }
    // Drop candidates nested inside another candidate's body: those are
    // locals and lambdas-with-names, not program-level functions.
    for (const Candidate& cand : cands) {
      bool nested = false;
      for (const Candidate& outer : cands) {
        if (outer.body_open >= n || &outer == &cand) continue;
        if (cand.name_idx > outer.body_open &&
            cand.name_idx < brace_match_[outer.body_open]) {
          nested = true;
          break;
        }
      }
      if (nested) continue;
      if (cand.body_open < n) {
        DefinitionInfo def;
        def.signature = cand.sig;
        def_bodies_.emplace_back(cand.body_open, brace_match_[cand.body_open]);
        out_.defs.push_back(std::move(def));
      } else {
        out_.decls.push_back(cand.sig);
      }
    }
  }

  // --- locks, blocking events, calls under lock ---

  struct Region {
    std::size_t decl = 0;
    std::size_t end = 0;
    std::string chain;
    std::string guard;
    int line = 0;
  };

  bool IsBlockingEvent(std::size_t i, bool* is_cv_wait) const {
    *is_cv_wait = false;
    if (!IsIdent(i) || !IsPunct(i + 1, "(")) return false;
    const std::string& name = toks_[i].text;
    if (PoolBlockingCalls().count(name) > 0) return true;
    if (MemberAccess(i) && CvWaitNames().count(name) > 0) {
      *is_cv_wait = true;
      return true;
    }
    if (MemberAccess(i) && name == "get" && i >= 2 && IsIdent(i - 2) &&
        ContainsNoCase(toks_[i - 2].text, "future")) {
      return true;
    }
    return false;
  }

  void HarvestLocks() {
    const std::size_t n = toks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!IsIdent(i) || GuardTypes().count(toks_[i].text) == 0) continue;
      std::size_t j = i + 1;
      if (IsPunct(j, "<")) j = SkipAngles(toks_, j);
      if (!IsIdent(j) || !IsPunct(j + 1, "(")) continue;
      const std::string guard = toks_[j].text;
      const std::size_t open = j + 1;
      const std::size_t past = SkipParens(toks_, open);
      std::size_t end = enclosing_open_[i] == n
                            ? n
                            : brace_match_[enclosing_open_[i]];
      // `guard.unlock()` releases early: the region ends there.
      for (std::size_t k = past; k < end; ++k) {
        if (IsIdent(k) && toks_[k].text == guard && MemberAccess(k) == false &&
            IsPunct(k + 1, ".") && k + 2 < n &&
            toks_[k + 2].text == "unlock") {
          end = k;
          break;
        }
      }
      for (const auto& [pb, pe] : SplitPieces(open, past - 1)) {
        std::string chain;
        bool deferred_tag = false;
        for (std::size_t k = pb; k < pe; ++k) {
          if (!IsIdent(k)) continue;
          const std::string& part = toks_[k].text;
          if (part == "defer_lock" || part == "adopt_lock" ||
              part == "try_to_lock") {
            deferred_tag = true;
            break;
          }
          if (part == "std") continue;
          if (!chain.empty()) chain += ".";
          chain += part;
        }
        if (deferred_tag || chain.empty()) continue;
        regions_.push_back({i, end, chain, guard, toks_[i].line});
      }
    }
    // held_by: which regions are live at each executed token.
    held_by_.assign(n, {});
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      ForEachExecuted(regions_[r].decl + 1, regions_[r].end,
                      [&](std::size_t idx) { held_by_[idx].push_back(r); });
    }
    auto held_chains = [&](std::size_t idx) {
      std::vector<std::string> chains;
      for (std::size_t r : held_by_[idx]) chains.push_back(regions_[r].chain);
      return chains;
    };
    // Nested acquisitions -> ordering edges; same chain -> self-deadlock.
    for (std::size_t r2 = 0; r2 < regions_.size(); ++r2) {
      const Region& inner = regions_[r2];
      for (std::size_t r1 : held_by_[inner.decl]) {
        const Region& outer = regions_[r1];
        if (outer.decl == inner.decl) continue;  // one scoped_lock(a, b)
        if (outer.chain == inner.chain) {
          out_.local.push_back(
              {kLockDisciplineRule, path_, inner.line,
               "mutex '" + inner.chain +
                   "' is locked while already held (guard '" + outer.guard +
                   "' at line " + std::to_string(outer.line) +
                   "): std::mutex self-deadlocks on recursive acquisition"});
        } else {
          out_.nested.push_back({outer.chain, inner.chain, inner.line});
        }
      }
    }
    // Blocking events and plain calls made while a lock is held.
    for (std::size_t i = 0; i < n; ++i) {
      if (held_by_[i].empty()) continue;
      bool is_cv_wait = false;
      if (IsBlockingEvent(i, &is_cv_wait)) {
        if (is_cv_wait) {
          // wait(lock) atomically releases its own guard; that is the one
          // sanctioned blocking-under-lock shape — as long as no OTHER
          // lock is still held.
          std::string first_arg;
          for (std::size_t k = i + 2; k < SkipParens(toks_, i + 1); ++k) {
            if (IsIdent(k)) {
              first_arg = toks_[k].text;
              break;
            }
          }
          bool all_released = !first_arg.empty();
          for (std::size_t r : held_by_[i]) {
            if (regions_[r].guard != first_arg) all_released = false;
          }
          if (all_released) continue;
        }
        out_.local.push_back(
            {kLockDisciplineRule, path_, toks_[i].line,
             "blocking call '" + toks_[i].text + "' while holding lock(s) " +
                 JoinNames(held_chains(i)) +
                 ": a thread parked here keeps the mutex and can deadlock "
                 "the lock's other users (move the blocking call outside "
                 "the critical section)"});
        continue;
      }
      if (IsIdent(i) && IsPunct(i + 1, "(") &&
          Keywords().count(toks_[i].text) == 0 && !MacroLike(toks_[i].text) &&
          GuardTypes().count(toks_[i].text) == 0) {
        out_.calls_under_lock.push_back(
            {toks_[i].text, toks_[i].line, held_chains(i)});
      }
    }
  }

  // --- per-definition facts: calls, charges, acquires, direct blocking ---
  void HarvestDefBodies() {
    for (std::size_t d = 0; d < out_.defs.size(); ++d) {
      DefinitionInfo& def = out_.defs[d];
      const auto [body, body_end] = def_bodies_[d];
      std::vector<std::size_t> lambda_ends;
      for (std::size_t i = body + 1; i < body_end; ++i) {
        while (!lambda_ends.empty() && i >= lambda_ends.back()) {
          lambda_ends.pop_back();
        }
        if (lambda_body_[i]) lambda_ends.push_back(brace_match_[i]);
        // Call sites (argument identifiers flattened).
        if (IsIdent(i) && IsPunct(i + 1, "(") &&
            Keywords().count(toks_[i].text) == 0 &&
            !MacroLike(toks_[i].text)) {
          CallInfo call;
          call.callee = toks_[i].text;
          call.line = toks_[i].line;
          call.deferred = !lambda_ends.empty();
          const std::size_t past = SkipParens(toks_, i + 1);
          for (std::size_t k = i + 2; k + 1 < past; ++k) {
            if (IsIdent(k)) call.arg_idents.push_back(toks_[k].text);
          }
          def.calls.push_back(std::move(call));
        }
        // Constructor-style charge: `CancelToken race_token(parent...)`.
        if (IsIdent(i) && IsIdent(i + 1) && IsPunct(i + 2, "(") &&
            Keywords().count(toks_[i].text) == 0 &&
            Keywords().count(toks_[i + 1].text) == 0 &&
            !MacroLike(toks_[i].text) &&
            (IsPunct(i - 1, ";") || IsPunct(i - 1, "{") ||
             IsPunct(i - 1, "}"))) {
          DefinitionInfo::Charge charge;
          charge.target = toks_[i + 1].text;
          const std::size_t past = SkipParens(toks_, i + 2);
          for (std::size_t k = i + 3; k + 1 < past; ++k) {
            if (IsIdent(k)) charge.rhs_idents.push_back(toks_[k].text);
          }
          if (!charge.rhs_idents.empty()) {
            def.charges.push_back(std::move(charge));
          }
        }
        // Assignment / initialization charge.
        if (IsPunct(i, "=") && !IsPunct(i + 1, "=") && i > body + 1) {
          const Tok& before = toks_[i - 1];
          const bool compound =
              before.kind == TokKind::kPunct &&
              (before.text == "=" || before.text == "!" ||
               before.text == "<" || before.text == ">" ||
               before.text == "+" || before.text == "-" ||
               before.text == "*" || before.text == "/" ||
               before.text == "%" || before.text == "&" ||
               before.text == "|" || before.text == "^");
          if (compound) continue;
          // LHS: walk back to the statement boundary.
          std::size_t lhs_begin = i;
          while (lhs_begin > body + 1) {
            const Tok& t = toks_[lhs_begin - 1];
            if (t.kind == TokKind::kPunct &&
                (t.text == ";" || t.text == "{" || t.text == "}" ||
                 t.text == "(" || t.text == ",")) {
              break;
            }
            --lhs_begin;
          }
          DefinitionInfo::Charge charge;
          bool lhs_member = false;
          std::string first_ident;
          std::string last_ident;
          for (std::size_t k = lhs_begin; k < i; ++k) {
            if (toks_[k].kind == TokKind::kPunct &&
                (toks_[k].text == "." || toks_[k].text == "->")) {
              lhs_member = true;
            }
            if (IsIdent(k)) {
              if (first_ident.empty()) first_ident = toks_[k].text;
              last_ident = toks_[k].text;
            }
          }
          // `anneal.deadline = ...` charges the container; `Deadline d = ...`
          // charges the declared name.
          charge.target = lhs_member ? first_ident : last_ident;
          charge.member = lhs_member;
          if (charge.target.empty()) continue;
          // A lambda on the right-hand side is code, not a budget value:
          // `auto f = [tok](...) {...};` must not make `f` a carrier via
          // the captures (calling f() forwards nothing).
          if (IsPunct(i + 1, "[")) continue;
          int depth = 0;
          for (std::size_t k = i + 1; k < body_end; ++k) {
            if (toks_[k].kind == TokKind::kPunct) {
              if (toks_[k].text == "(") ++depth;
              if (toks_[k].text == ")") --depth;
              if (toks_[k].text == "{") {
                // Brace group (lambda body, braced init of a subobject):
                // statement-local code, not part of this value expression.
                k = SkipBraces(toks_, k) - 1;
                continue;
              }
              if (toks_[k].text == ";" && depth <= 0) break;
            }
            if (IsIdent(k)) charge.rhs_idents.push_back(toks_[k].text);
          }
          if (!charge.rhs_idents.empty()) {
            def.charges.push_back(std::move(charge));
          }
        }
      }
      // Executed-only facts: locks taken and blocking done by this body
      // itself (not by lambdas it hands to the pool).
      for (const Region& region : regions_) {
        if (region.decl > body && region.decl < body_end) {
          bool deferred = false;
          for (std::size_t i = body + 1; i < region.decl; ++i) {
            if (lambda_body_[i] && brace_match_[i] > region.decl) {
              deferred = true;
              break;
            }
          }
          if (!deferred) def.acquires.insert(region.chain);
        }
      }
      ForEachExecuted(body + 1, body_end, [&](std::size_t i) {
        bool is_cv_wait = false;
        if (IsBlockingEvent(i, &is_cv_wait)) def.blocks_directly = true;
      });
    }
  }

  // --- qqo-pool-reentrancy: blocking pool use inside pool lambdas ---
  void CheckPoolReentrancy() {
    const std::size_t n = toks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!IsIdent(i) || PoolEntryCalls().count(toks_[i].text) == 0 ||
          !IsPunct(i + 1, "(")) {
        continue;
      }
      const std::size_t past = SkipParens(toks_, i + 1);
      for (std::size_t k = i + 2; k + 1 < past; ++k) {
        if (!lambda_body_[k]) continue;
        const std::size_t body_end = brace_match_[k];
        ForEachExecuted(k + 1, body_end, [&](std::size_t t) {
          if (!IsIdent(t) || !IsPunct(t + 1, "(")) return;
          const std::string& name = toks_[t].text;
          if (PoolBlockingCalls().count(name) > 0) {
            out_.local.push_back(
                {kPoolReentrancyRule, path_, toks_[t].line,
                 "'" + name + "' inside a lambda running on the ThreadPool: "
                 "nested parallel sections make a worker wait for workers "
                 "(starvation deadlock) — keep one parallel level or run "
                 "the inner section inline"});
            return;
          }
          if (MemberAccess(t) && CvWaitNames().count(name) > 0) {
            out_.local.push_back(
                {kPoolReentrancyRule, path_, toks_[t].line,
                 "condition-variable wait inside a lambda running on the "
                 "ThreadPool parks a worker thread; signal completion "
                 "without blocking the pool"});
            return;
          }
          if (name == "Submit") {
            const std::size_t after = SkipParens(toks_, t + 1);
            if (IsPunct(after, ".") && after + 1 < n &&
                toks_[after + 1].text == "get") {
              out_.local.push_back(
                  {kPoolReentrancyRule, path_, toks_[t].line,
                   "blocking pool submission Submit(...).get() inside a "
                   "lambda already running on the ThreadPool: the waiting "
                   "worker occupies the slot its task needs"});
            }
            return;
          }
          if (MemberAccess(t) && name == "get" && t >= 2 && IsIdent(t - 2) &&
              ContainsNoCase(toks_[t - 2].text, "future")) {
            out_.local.push_back(
                {kPoolReentrancyRule, path_, toks_[t].line,
                 "future .get() inside a lambda running on the ThreadPool "
                 "blocks a worker on other pool work"});
          }
        });
        k = body_end;
      }
    }
  }

  const std::string path_;
  const LexResult lex_;
  const std::vector<Tok>& toks_;
  std::vector<std::size_t> brace_match_;
  std::vector<std::size_t> enclosing_open_;
  std::vector<bool> lambda_body_;
  std::vector<std::pair<std::size_t, std::size_t>> def_bodies_;
  std::vector<Region> regions_;
  std::vector<std::vector<std::size_t>> held_by_;
  ParsedFile out_;
};

}  // namespace

void ProgramIndex::AddFile(const std::string& path,
                           const std::string& content) {
  ParsedFile parsed = FileParser(path, content).Run();
  FilePack& pack = files_[path];
  pack.defs = std::move(parsed.defs);
  pack.decls = std::move(parsed.decls);
  pack.struct_members = std::move(parsed.struct_members);
  for (ParsedNested& nested : parsed.nested) {
    pack.nested_locks.push_back({nested.outer, nested.inner, nested.line});
  }
  for (ParsedCallUnderLock& cul : parsed.calls_under_lock) {
    pack.calls_under_lock.push_back(
        {std::move(cul.callee), cul.line, std::move(cul.held)});
  }
  pack.local = std::move(parsed.local);
}

void ProgramIndex::Finalize() {
  finalized_ = true;
  // Budget-bearing struct fixed point: a struct whose members (transitively)
  // include a Deadline/CancelToken/SolveBudget carries budget state, so a
  // parameter of that type makes its function budget-receiving.
  budget_types_ = {"Deadline", "CancelToken", "SolveBudget"};
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [path, pack] : files_) {
      for (const auto& [name, members] : pack.struct_members) {
        if (budget_types_.count(name) > 0) continue;
        for (const std::string& member_type : members) {
          if (budget_types_.count(member_type) > 0) {
            budget_types_.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
  }
  // Name-indexed signatures and the budget-overload set.
  for (const auto& [path, pack] : files_) {
    for (const SignatureInfo& sig : pack.decls) {
      by_name_[sig.name].push_back(&sig);
    }
    for (const DefinitionInfo& def : pack.defs) {
      by_name_[def.signature.name].push_back(&def.signature);
    }
  }
  for (auto& [name, sigs] : by_name_) {
    std::sort(sigs.begin(), sigs.end(),
              [](const SignatureInfo* a, const SignatureInfo* b) {
                return std::tie(a->file, a->line) < std::tie(b->file, b->line);
              });
    for (const SignatureInfo* sig : sigs) {
      for (const ParamInfo& param : sig->params) {
        for (const std::string& type : param.type_idents) {
          if (budget_types_.count(type) > 0) {
            budget_overloads_.insert(name);
            break;
          }
        }
      }
    }
  }
  CheckDeadlinePlumbing();
  CheckLockDiscipline();
  for (auto& [path, pack] : files_) {
    std::vector<Finding>& sink = findings_[path];
    sink.insert(sink.end(), pack.local.begin(), pack.local.end());
  }
}

const std::vector<Finding>& ProgramIndex::FindingsFor(
    const std::string& path) const {
  static const std::vector<Finding> kEmpty;
  const auto it = findings_.find(path);
  return it == findings_.end() ? kEmpty : it->second;
}

bool ProgramIndex::IsBudgetType(const std::string& type_ident) const {
  return budget_types_.count(type_ident) > 0;
}

bool ProgramIndex::HasBudgetOverload(const std::string& function_name) const {
  return budget_overloads_.count(function_name) > 0;
}

std::vector<const SignatureInfo*> ProgramIndex::SignaturesOf(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? std::vector<const SignatureInfo*>{}
                              : it->second;
}

const std::vector<DefinitionInfo>& ProgramIndex::DefinitionsIn(
    const std::string& path) const {
  static const std::vector<DefinitionInfo> kEmpty;
  const auto it = files_.find(path);
  return it == files_.end() ? kEmpty : it->second.defs;
}

void ProgramIndex::CheckDeadlinePlumbing() {
  for (auto& [path, pack] : files_) {
    for (const DefinitionInfo& def : pack.defs) {
      // Carriers: parameters of budget (or budget-bearing) type, grown by
      // the charging statements to cover struct-member forwarding.
      std::set<std::string> carriers;
      std::string budget_param;
      std::set<std::string> param_names;
      for (const ParamInfo& param : def.signature.params) {
        if (!param.name.empty()) param_names.insert(param.name);
        for (const std::string& type : param.type_idents) {
          if (budget_types_.count(type) > 0) {
            carriers.insert(param.name);
            if (budget_param.empty()) budget_param = param.name;
            break;
          }
        }
      }
      if (carriers.empty()) continue;
      const std::set<std::string> param_carriers = carriers;
      auto carries = [&](const std::string& ident) {
        return carriers.count(ident) > 0 || BudgetNamed(ident);
      };
      // Carrier growth. A plain assignment charges only from the budget
      // params or a budget-named identifier — NOT from derived carriers,
      // or every scalar pulled out of an options struct would launder the
      // budget. Member writes (`anneal.deadline = stage;`) do chain, so a
      // staged deadline composed into a local still marks its container.
      for (int round = 0; round < 4; ++round) {
        bool changed = false;
        for (const DefinitionInfo::Charge& charge : def.charges) {
          if (carriers.count(charge.target) > 0) continue;
          for (const std::string& rhs : charge.rhs_idents) {
            const bool charges = BudgetNamed(rhs) ||
                                 param_carriers.count(rhs) > 0 ||
                                 (charge.member && carriers.count(rhs) > 0);
            if (charges) {
              carriers.insert(charge.target);
              changed = true;
              break;
            }
          }
        }
        if (!changed) break;
      }
      for (const CallInfo& call : def.calls) {
        if (budget_types_.count(call.callee) > 0) continue;  // constructors
        if (param_names.count(call.callee) > 0) continue;  // callable params
        if (call.callee == def.signature.name) continue;   // recursion
        if (budget_overloads_.count(call.callee) == 0) continue;
        bool forwarded = false;
        for (const std::string& arg : call.arg_idents) {
          if (carries(arg)) {
            forwarded = true;
            break;
          }
        }
        if (forwarded) continue;
        findings_[path].push_back(
            {kDeadlinePlumbingRule, path, call.line,
             "'" + def.signature.name + "' receives a budget ('" +
                 budget_param + "') but calls '" + call.callee +
                 "' without forwarding a deadline/token/budget — '" +
                 call.callee +
                 "' has an overload that accepts one, so the budget is "
                 "silently dropped here"});
      }
    }
  }
}

void ProgramIndex::CheckLockDiscipline() {
  // Transitive summaries over the (name-resolved, non-deferred) call graph:
  // blocks*[def] — the body can park the calling thread; acquires*[def] —
  // mutexes (file-scoped) the call may take.
  std::map<const DefinitionInfo*, bool> blocks;
  std::map<const DefinitionInfo*, std::set<std::pair<std::string, std::string>>>
      acquires;
  std::map<std::string, std::vector<const DefinitionInfo*>> defs_by_name;
  for (const auto& [path, pack] : files_) {
    for (const DefinitionInfo& def : pack.defs) {
      blocks[&def] = def.blocks_directly;
      auto& acq = acquires[&def];
      for (const std::string& chain : def.acquires) {
        acq.emplace(path, chain);
      }
      defs_by_name[def.signature.name].push_back(&def);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (auto& [def, blocked] : blocks) {
      for (const CallInfo& call : def->calls) {
        if (call.deferred) continue;
        const auto it = defs_by_name.find(call.callee);
        if (it == defs_by_name.end()) continue;
        for (const DefinitionInfo* callee : it->second) {
          if (callee == def) continue;
          if (blocks[callee] && !blocked) {
            blocked = true;
            changed = true;
          }
          for (const auto& node : acquires[callee]) {
            if (acquires[def].insert(node).second) changed = true;
          }
        }
      }
    }
  }
  std::map<std::string, bool> name_blocks;
  std::map<std::string, std::set<std::pair<std::string, std::string>>>
      name_acquires;
  for (const auto& [name, defs] : defs_by_name) {
    for (const DefinitionInfo* def : defs) {
      if (blocks[def]) name_blocks[name] = true;
      name_acquires[name].insert(acquires[def].begin(), acquires[def].end());
    }
  }
  // Lock-order graph: nodes are (file, chain); edges from lexically nested
  // guards and from calls made under a lock into lock-taking functions.
  using Node = std::pair<std::string, std::string>;
  struct EdgeSite {
    std::string file;
    int line = 0;
  };
  std::map<std::pair<Node, Node>, EdgeSite> edges;
  for (const auto& [path, pack] : files_) {
    for (const NestedLock& nested : pack.nested_locks) {
      edges.emplace(
          std::make_pair(Node{path, nested.outer}, Node{path, nested.inner}),
          EdgeSite{path, nested.line});
    }
    for (const CallUnderLock& cul : pack.calls_under_lock) {
      const auto blocked_it = name_blocks.find(cul.callee);
      if (blocked_it != name_blocks.end() && blocked_it->second) {
        findings_[path].push_back(
            {kLockDisciplineRule, path, cul.line,
             "'" + cul.callee + "' is called while holding lock(s) " +
                 JoinNames(cul.held) + "; it (transitively) blocks on the "
                 "thread pool or a condition variable — release the lock "
                 "before calling, or NOLINT with the invariant that makes "
                 "this safe"});
      }
      const auto acq_it = name_acquires.find(cul.callee);
      if (acq_it == name_acquires.end()) continue;
      for (const Node& target : acq_it->second) {
        for (const std::string& held : cul.held) {
          const Node source{path, held};
          if (source == target) {
            findings_[path].push_back(
                {kLockDisciplineRule, path, cul.line,
                 "'" + cul.callee + "' re-acquires mutex '" + held +
                     "' that is already held at this call site "
                     "(self-deadlock through the call graph)"});
            continue;
          }
          edges.emplace(std::make_pair(source, target),
                        EdgeSite{path, cul.line});
        }
      }
    }
  }
  // Cycle rejection: strongly connected components of the edge graph.
  // Deterministic: nodes and edges live in std::map order.
  std::map<Node, std::vector<Node>> adjacency;
  for (const auto& [edge, site] : edges) {
    adjacency[edge.first].push_back(edge.second);
    adjacency[edge.second];
  }
  std::map<Node, int> component;
  {
    // Iterative Tarjan SCC.
    std::map<Node, int> index;
    std::map<Node, int> low;
    std::map<Node, bool> on_stack;
    std::vector<Node> stack;
    int next_index = 0;
    int next_component = 0;
    for (const auto& [root, unused] : adjacency) {
      if (index.count(root) > 0) continue;
      std::vector<std::pair<Node, std::size_t>> work;
      work.emplace_back(root, 0);
      index[root] = low[root] = next_index++;
      stack.push_back(root);
      on_stack[root] = true;
      while (!work.empty()) {
        auto& [node, child] = work.back();
        const std::vector<Node>& next = adjacency[node];
        if (child < next.size()) {
          const Node& target = next[child++];
          if (index.count(target) == 0) {
            index[target] = low[target] = next_index++;
            stack.push_back(target);
            on_stack[target] = true;
            work.emplace_back(target, 0);
          } else if (on_stack[target]) {
            low[node] = std::min(low[node], index[target]);
          }
          continue;
        }
        if (low[node] == index[node]) {
          while (true) {
            const Node top = stack.back();
            stack.pop_back();
            on_stack[top] = false;
            component[top] = next_component;
            if (top == node) break;
          }
          ++next_component;
        }
        const Node done = node;
        work.pop_back();
        if (!work.empty()) {
          low[work.back().first] =
              std::min(low[work.back().first], low[done]);
        }
      }
    }
  }
  std::map<int, int> component_size;
  for (const auto& [node, comp] : component) ++component_size[comp];
  for (const auto& [edge, site] : edges) {
    const auto a = component.find(edge.first);
    const auto b = component.find(edge.second);
    if (a == component.end() || b == component.end()) continue;
    if (a->second != b->second || component_size[a->second] < 2) continue;
    const std::string& site_file = site.file;
    auto display = [&site_file](const Node& node) {
      return node.first == site_file ? node.second
                                     : node.second + " (" +
                                           BaseName(node.first) + ")";
    };
    std::string cycle_members;
    for (const auto& [node, comp] : component) {
      if (comp != a->second) continue;
      if (!cycle_members.empty()) cycle_members += ", ";
      cycle_members += display(node);
    }
    findings_[site.file].push_back(
        {kLockDisciplineRule, site.file, site.line,
         "lock-order cycle: '" + display(edge.first) + "' is held when '" +
             display(edge.second) + "' is taken here, but elsewhere the "
             "order reverses (cycle members: " + cycle_members +
             "); acquire these mutexes in one global order"});
  }
}

}  // namespace qopt::lint
