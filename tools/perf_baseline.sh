#!/usr/bin/env bash
# Runs the perf_micro google-benchmark suite and captures the results as
# JSON for before/after comparisons of the simulation hot paths.
#
# Usage: tools/perf_baseline.sh [build-dir] [output.json]
#        tools/perf_baseline.sh --check <baseline.json> [build-dir]
#
# The suite runs twice — once pinned to a single thread (QQO_THREADS=1)
# and once with the default pool — so the JSON records both the serial
# baseline and the parallel sweep numbers. Extra benchmark flags can be
# passed via QQO_BENCH_FILTER (a --benchmark_filter regex).
#
# --check re-runs the QAOA / annealer hot-loop benchmarks (the loops that
# gained disarmed fault points, deadline checks and obs counters) and
# fails if any of them regressed more than QQO_PERF_TOLERANCE (default 2%)
# against the serial numbers recorded in <baseline.json>. Capture the
# baseline with a plain run of this script before the change under test.
# It also compares the BM_ObsDisarmed{Baseline,Traced} pair within the
# current run: disarmed tracing/metrics instrumentation must stay within
# the same tolerance of the uninstrumented kernel.

set -euo pipefail

if [[ "${1:-}" == "--check" ]]; then
  baseline_json="${2:?usage: perf_baseline.sh --check <baseline.json> [build-dir]}"
  build_dir="${3:-build}"
  perf_bin="${build_dir}/bench/perf_micro"
  tolerance="${QQO_PERF_TOLERANCE:-0.02}"
  hot_filter="${QQO_BENCH_FILTER:-BM_SimulatedAnnealing|BM_StatevectorQaoa|BM_ObsDisarmed}"
  if [[ ! -x "${perf_bin}" ]]; then
    echo "error: ${perf_bin} not found; build first" >&2
    exit 1
  fi
  if [[ ! -r "${baseline_json}" ]]; then
    echo "error: baseline ${baseline_json} not readable" >&2
    exit 1
  fi
  current_json="$(mktemp)"
  trap 'rm -f "${current_json}"' EXIT
  echo "== perf_micro --check (filter: ${hot_filter}, QQO_THREADS=1) =="
  QQO_THREADS=1 "${perf_bin}" \
    --benchmark_filter="${hot_filter}" \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
    --benchmark_out="${current_json}" --benchmark_out_format=json
  python3 - "${baseline_json}" "${current_json}" "${tolerance}" <<'PY'
import json, sys

baseline_path, current_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])

def times(path):
    with open(path) as f:
        doc = json.load(f)
    # Accept both a raw google-benchmark file and this script's merged
    # {"serial": ..., "parallel": ...} capture (serial numbers compared).
    doc = doc.get("serial", doc)
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        # Prefer the median aggregate; fall back to the plain entry.
        if bench.get("aggregate_name", "") not in ("", "median"):
            continue
        out[name.removesuffix("_median")] = float(bench["real_time"])
    return out

base, cur = times(baseline_path), times(current_path)
shared = sorted(set(base) & set(cur))
if not shared:
    sys.exit("error: no common benchmarks between baseline and current run")
failed = False
for name in shared:
    ratio = cur[name] / base[name] - 1.0
    verdict = "FAIL" if ratio > tolerance else "ok"
    failed |= ratio > tolerance
    print(f"{verdict:4} {name}: {base[name]:.0f} -> {cur[name]:.0f} ns "
          f"({ratio:+.2%}, tolerance {tolerance:.0%})")

# Disarmed-observability budget: traced vs untraced kernel in THIS run,
# so the check works even against baselines captured before the obs pair
# existed.
untraced = cur.get("BM_ObsDisarmedBaseline")
traced = cur.get("BM_ObsDisarmedTraced")
if untraced and traced:
    ratio = traced / untraced - 1.0
    verdict = "FAIL" if ratio > tolerance else "ok"
    failed |= ratio > tolerance
    print(f"{verdict:4} disarmed obs overhead: {untraced:.0f} -> "
          f"{traced:.0f} ns ({ratio:+.2%}, tolerance {tolerance:.0%})")
sys.exit(1 if failed else 0)
PY
  exit $?
fi

build_dir="${1:-build}"
out_json="${2:-BENCH_perf.json}"
perf_bin="${build_dir}/bench/perf_micro"

if [[ ! -x "${perf_bin}" ]]; then
  echo "error: ${perf_bin} not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

filter_args=()
if [[ -n "${QQO_BENCH_FILTER:-}" ]]; then
  filter_args+=("--benchmark_filter=${QQO_BENCH_FILTER}")
fi

serial_json="$(mktemp)"
parallel_json="$(mktemp)"
trap 'rm -f "${serial_json}" "${parallel_json}"' EXIT

echo "== perf_micro, QQO_THREADS=1 (serial baseline) =="
QQO_THREADS=1 "${perf_bin}" \
  --benchmark_out="${serial_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

echo
echo "== perf_micro, default thread pool =="
"${perf_bin}" \
  --benchmark_out="${parallel_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

# Merge the two runs into one file keyed by thread setting.
{
  echo '{'
  echo '  "serial":'
  sed 's/^/  /' "${serial_json}"
  echo '  ,'
  echo '  "parallel":'
  sed 's/^/  /' "${parallel_json}"
  echo '}'
} > "${out_json}"

echo
echo "wrote ${out_json}"
