#!/usr/bin/env bash
# Runs the perf_micro google-benchmark suite and captures the results as
# JSON for before/after comparisons of the simulation hot paths.
#
# Usage: tools/perf_baseline.sh [build-dir] [output.json]
#        tools/perf_baseline.sh --record [build-dir] [outdir]
#        tools/perf_baseline.sh --check [baseline.json] [build-dir]
#
# Plain mode runs the suite twice — once pinned to a single thread
# (QQO_THREADS=1) and once with the default pool — so the JSON records
# both the serial baseline and the parallel sweep numbers. Extra benchmark
# flags can be passed via QQO_BENCH_FILTER (a --benchmark_filter regex).
#
# --record appends a point to the repo's committed perf trajectory: it
# runs the suite at QQO_THREADS=1 with 3 repetitions and writes the best
# (minimum) time of every benchmark into BENCH_<date>_<shortsha>.json
# (schema qqo-bench-snapshot-v1, see DESIGN.md "Performance") in <outdir>
# (default: the repo root). Commit the file so future --check runs — and
# future readers of the history — can see how each change moved the hot
# paths.
#
# --check re-runs the hot-loop benchmarks and fails on regressions
# against <baseline.json>; when no baseline is given it uses the newest
# committed BENCH_*.json snapshot. Two tolerances apply:
#
#   * QQO_PERF_SNAPSHOT_TOLERANCE (default 10%) gates the cross-run
#     comparison against the snapshot. Runs separated in time on a
#     shared/virtualized box see frequency and steal-time drift measured
#     at up to ~8% between windows minutes apart, so a tighter cross-run
#     gate flakes; 10% still catches the step regressions this gate
#     exists for (losing SIMD dispatch or incremental sweeps is a
#     2-10x effect, not a 10% one).
#   * QQO_PERF_TOLERANCE (default 2%) gates the intra-run
#     BM_ObsDisarmed{Baseline,Traced} pair — disarmed tracing/metrics
#     instrumentation vs the uninstrumented kernel. Both sides come from
#     the same run window, so the tight budget is reliable, and it is
#     always checked even when the cross-run comparison is skipped.
#
# Both sides compare best-of-repetitions rather than medians: scheduling
# noise on a shared box is one-sided (interference only ever slows a run
# down), so the minimum is the stable estimator of the code's true cost.
# On failure the suite is re-run and the minima merged, up to
# QQO_PERF_CHECK_ATTEMPTS (default 2) passes — a real regression fails
# every window, noise does not. Snapshots carry a host fingerprint: when
# it does not match the current machine, the cross-run comparison is
# skipped with a warning (numbers from different CPUs are not
# comparable) unless QQO_PERF_ALLOW_CROSS_HOST=1.

set -euo pipefail

script_dir="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")" &>/dev/null && pwd)"
repo_root="$(cd -- "${script_dir}/.." &>/dev/null && pwd)"

host_fingerprint() {
  local model
  model="$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo 2>/dev/null | head -1)"
  if [[ -z "${model}" ]]; then
    model="$(uname -m)"
  fi
  echo "${model} x$(nproc)"
}

require_perf_bin() {
  if [[ ! -x "${perf_bin}" ]]; then
    echo "error: ${perf_bin} not found; build first:" >&2
    echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
    exit 1
  fi
}

# Writes the --check comparison script to $1. It takes the baseline
# path, the two tolerances, and one raw google-benchmark JSON per check
# attempt; minima are merged across attempts before comparing.
write_compare_py() {
  cat > "$1" <<'PY'
import json, os, sys

baseline_path = sys.argv[1]
tolerance, snapshot_tolerance = float(sys.argv[2]), float(sys.argv[3])
current_paths = sys.argv[4:]

def load(path):
    with open(path) as f:
        return json.load(f)

def times(doc):
    # Accept a qqo-bench-snapshot-v1 file, a raw google-benchmark file,
    # and the legacy merged {"serial": ..., "parallel": ...} capture
    # (serial numbers compared).
    if doc.get("schema") == "qqo-bench-snapshot-v1":
        return {b["name"]: float(b["real_time_ns"]) for b in doc["benchmarks"]}
    doc = doc.get("serial", doc)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Best of the repetition entries (noise is one-sided); the median
        # aggregate is only a fallback for legacy aggregates-only files.
        agg = bench.get("aggregate_name", "")
        if bench.get("run_type") == "aggregate" or agg:
            if agg == "median":
                out.setdefault(bench["name"].removesuffix("_median"),
                               float(bench["real_time"]))
            continue
        name = bench["name"]
        t = float(bench["real_time"])
        if name not in out or t < out[name]:
            out[name] = t
    return out

base_doc = load(baseline_path)
base = times(base_doc)
cur = {}
for path in current_paths:
    for name, t in times(load(path)).items():
        if name not in cur or t < cur[name]:
            cur[name] = t
failed = False

baseline_host = base_doc.get("host")
current_host = os.environ.get("QQO_PERF_HOST")
cross_host = (baseline_host is not None and current_host is not None
              and baseline_host != current_host)
if cross_host and os.environ.get("QQO_PERF_ALLOW_CROSS_HOST") != "1":
    print(f"warning: baseline host '{baseline_host}' != current host "
          f"'{current_host}'; skipping cross-run comparison "
          f"(set QQO_PERF_ALLOW_CROSS_HOST=1 to force)")
else:
    shared = sorted(set(base) & set(cur))
    if not shared:
        sys.exit("error: no common benchmarks between baseline and current run")
    for name in shared:
        ratio = cur[name] / base[name] - 1.0
        verdict = "FAIL" if ratio > snapshot_tolerance else "ok"
        failed |= ratio > snapshot_tolerance
        print(f"{verdict:4} {name}: {base[name]:.0f} -> {cur[name]:.0f} ns "
              f"({ratio:+.2%}, tolerance {snapshot_tolerance:.0%})")

# Disarmed-observability budget: traced vs untraced kernel in THIS run,
# host-relative by construction, so it runs even when the cross-run
# comparison is skipped — and at the tight intra-run tolerance, since
# both sides share the same measurement window.
untraced = cur.get("BM_ObsDisarmedBaseline")
traced = cur.get("BM_ObsDisarmedTraced")
if untraced and traced:
    ratio = traced / untraced - 1.0
    verdict = "FAIL" if ratio > tolerance else "ok"
    failed |= ratio > tolerance
    print(f"{verdict:4} disarmed obs overhead: {untraced:.0f} -> "
          f"{traced:.0f} ns ({ratio:+.2%}, tolerance {tolerance:.0%})")
sys.exit(1 if failed else 0)
PY
}

if [[ "${1:-}" == "--record" ]]; then
  build_dir="${2:-build}"
  outdir="${3:-${repo_root}}"
  perf_bin="${build_dir}/bench/perf_micro"
  require_perf_bin
  sha="$(git -C "${repo_root}" rev-parse --short=9 HEAD 2>/dev/null || echo nogit)"
  date_utc="$(date -u +%Y-%m-%d)"
  out_json="${outdir}/BENCH_${date_utc}_${sha}.json"
  compiler="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "${build_dir}/CMakeCache.txt" 2>/dev/null | head -1)"
  compiler_version="$("${compiler:-c++}" --version 2>/dev/null | head -1 || echo unknown)"
  raw_json="$(mktemp)"
  trap 'rm -f "${raw_json}"' EXIT
  filter_args=()
  if [[ -n "${QQO_BENCH_FILTER:-}" ]]; then
    filter_args+=("--benchmark_filter=${QQO_BENCH_FILTER}")
  fi
  echo "== perf_micro --record (QQO_THREADS=1, 3 repetitions) =="
  QQO_THREADS=1 "${perf_bin}" \
    --benchmark_repetitions=3 \
    --benchmark_out="${raw_json}" --benchmark_out_format=json \
    "${filter_args[@]}"
  python3 - "${raw_json}" "${out_json}" "${date_utc}" "${sha}" \
      "${compiler_version}" "$(host_fingerprint)" <<'PY'
import json, sys

raw_path, out_path, date, sha, compiler, host = sys.argv[1:7]
with open(raw_path) as f:
    raw = json.load(f)

# Best of the repetitions: noise on a shared machine only ever adds
# time, so the minimum estimates the code's true cost most stably.
best = {}
for bench in raw.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    name = bench["name"]
    entry = {
        "name": name,
        "real_time_ns": float(bench["real_time"]),
        "cpu_time_ns": float(bench["cpu_time"]),
        "iterations": int(bench["iterations"]),
    }
    if name not in best or entry["real_time_ns"] < best[name]["real_time_ns"]:
        best[name] = entry
benchmarks = list(best.values())
if not benchmarks:
    sys.exit("error: benchmark run produced no results")

snapshot = {
    "schema": "qqo-bench-snapshot-v1",
    "date": date,
    "sha": sha,
    "compiler": compiler,
    "host": host,
    "threads": 1,
    "benchmarks": sorted(benchmarks, key=lambda b: b["name"]),
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")
PY
  exit $?
fi

if [[ "${1:-}" == "--check" ]]; then
  baseline_json="${2:-}"
  build_dir="${3:-build}"
  # No baseline path (or a build dir in its place): compare against the
  # newest committed snapshot.
  if [[ -z "${baseline_json}" || -d "${baseline_json}" ]]; then
    [[ -n "${baseline_json}" ]] && build_dir="${baseline_json}"
    baseline_json="$(git -C "${repo_root}" ls-files 'BENCH_*.json' | sort | tail -1)"
    if [[ -z "${baseline_json}" ]]; then
      echo "error: no committed BENCH_*.json snapshot to check against;" >&2
      echo "  capture one with: tools/perf_baseline.sh --record" >&2
      exit 1
    fi
    baseline_json="${repo_root}/${baseline_json}"
    echo "baseline: ${baseline_json}"
  fi
  perf_bin="${build_dir}/bench/perf_micro"
  tolerance="${QQO_PERF_TOLERANCE:-0.02}"
  snapshot_tolerance="${QQO_PERF_SNAPSHOT_TOLERANCE:-0.10}"
  attempts="${QQO_PERF_CHECK_ATTEMPTS:-2}"
  hot_filter="${QQO_BENCH_FILTER:-BM_SimulatedAnnealing|BM_SaSweepDensity|BM_StatevectorQaoa|BM_StatevectorGateLayer|BM_ObsDisarmed|BM_RaceDispatch|BM_Serve|BM_DecomposeSolve}"
  require_perf_bin
  if [[ ! -r "${baseline_json}" ]]; then
    echo "error: baseline ${baseline_json} not readable" >&2
    exit 1
  fi
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "${tmpdir}"' EXIT
  write_compare_py "${tmpdir}/compare.py"
  current_jsons=()
  status=1
  for ((attempt = 1; attempt <= attempts; attempt++)); do
    current_json="${tmpdir}/check_${attempt}.json"
    current_jsons+=("${current_json}")
    echo "== perf_micro --check attempt ${attempt}/${attempts}" \
         "(filter: ${hot_filter}, QQO_THREADS=1) =="
    QQO_THREADS=1 "${perf_bin}" \
      --benchmark_filter="${hot_filter}" \
      --benchmark_repetitions=3 \
      --benchmark_out="${current_json}" --benchmark_out_format=json
    if QQO_PERF_HOST="$(host_fingerprint)" \
       python3 "${tmpdir}/compare.py" "${baseline_json}" "${tolerance}" \
         "${snapshot_tolerance}" "${current_jsons[@]}"; then
      status=0
      break
    fi
    if (( attempt < attempts )); then
      echo "-- regression flagged; re-running and merging minima" \
           "(a real regression fails every window) --"
    fi
  done
  exit "${status}"
fi

build_dir="${1:-build}"
out_json="${2:-BENCH_perf.json}"
perf_bin="${build_dir}/bench/perf_micro"
require_perf_bin

filter_args=()
if [[ -n "${QQO_BENCH_FILTER:-}" ]]; then
  filter_args+=("--benchmark_filter=${QQO_BENCH_FILTER}")
fi

serial_json="$(mktemp)"
parallel_json="$(mktemp)"
trap 'rm -f "${serial_json}" "${parallel_json}"' EXIT

echo "== perf_micro, QQO_THREADS=1 (serial baseline) =="
QQO_THREADS=1 "${perf_bin}" \
  --benchmark_out="${serial_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

echo
echo "== perf_micro, default thread pool =="
"${perf_bin}" \
  --benchmark_out="${parallel_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

# Merge the two runs into one file keyed by thread setting.
{
  echo '{'
  echo '  "serial":'
  sed 's/^/  /' "${serial_json}"
  echo '  ,'
  echo '  "parallel":'
  sed 's/^/  /' "${parallel_json}"
  echo '}'
} > "${out_json}"

echo
echo "wrote ${out_json}"
