#!/usr/bin/env bash
# Runs the perf_micro google-benchmark suite and captures the results as
# JSON for before/after comparisons of the simulation hot paths.
#
# Usage: tools/perf_baseline.sh [build-dir] [output.json]
#
# The suite runs twice — once pinned to a single thread (QQO_THREADS=1)
# and once with the default pool — so the JSON records both the serial
# baseline and the parallel sweep numbers. Extra benchmark flags can be
# passed via QQO_BENCH_FILTER (a --benchmark_filter regex).

set -euo pipefail

build_dir="${1:-build}"
out_json="${2:-BENCH_perf.json}"
perf_bin="${build_dir}/bench/perf_micro"

if [[ ! -x "${perf_bin}" ]]; then
  echo "error: ${perf_bin} not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

filter_args=()
if [[ -n "${QQO_BENCH_FILTER:-}" ]]; then
  filter_args+=("--benchmark_filter=${QQO_BENCH_FILTER}")
fi

serial_json="$(mktemp)"
parallel_json="$(mktemp)"
trap 'rm -f "${serial_json}" "${parallel_json}"' EXIT

echo "== perf_micro, QQO_THREADS=1 (serial baseline) =="
QQO_THREADS=1 "${perf_bin}" \
  --benchmark_out="${serial_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

echo
echo "== perf_micro, default thread pool =="
"${perf_bin}" \
  --benchmark_out="${parallel_json}" --benchmark_out_format=json \
  "${filter_args[@]}"

# Merge the two runs into one file keyed by thread setting.
{
  echo '{'
  echo '  "serial":'
  sed 's/^/  /' "${serial_json}"
  echo '  ,'
  echo '  "parallel":'
  sed 's/^/  /' "${parallel_json}"
  echo '}'
} > "${out_json}"

echo
echo "wrote ${out_json}"
