#include "serve/serve_cli.h"

int main(int argc, char** argv) {
  return qopt::serve::RunQqoServe(argc, argv);
}
