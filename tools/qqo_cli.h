#pragma once

#include <string>
#include <vector>

namespace qopt::cli {

/// Exit codes of the qqo command-line tool (documented in README.md).
inline constexpr int kExitOk = 0;       ///< Success.
inline constexpr int kExitError = 1;    ///< Runtime / input-file error.
inline constexpr int kExitUsage = 2;    ///< Command-line misuse.
inline constexpr int kExitDeadline = 3; ///< --timeout-ms budget exceeded.

/// Entry point of the `qqo` tool, factored out of main() so that tests
/// can drive the exact CLI code path in-process (fault-injection of
/// malformed workload files and flags must produce an error exit, never
/// an abort). `argv[0]` is the program name, as in main().
int RunQqoCli(int argc, const char* const* argv);

/// Convenience overload for tests: RunQqoCli({"qqo", "mqo", "file.json"}).
int RunQqoCli(const std::vector<std::string>& args);

}  // namespace qopt::cli
